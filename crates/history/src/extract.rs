//! Directive extraction: harvesting knowledge from historical data.
//!
//! Implements the paper's §3.1 mechanisms:
//!
//! * **Priorities** — "each hypothesis-focus pair is given priority: High
//!   if it tested true in at least one previous execution; Low if it
//!   tested false in all previous executions; otherwise, Medium."
//! * **Historic prunes** — "pruning based on historical data, such as
//!   functions with short execution time and redundant hierarchies (e.g.
//!   machine hierarchy if processes and machines map one-to-one)", plus
//!   exact prunes of previously-false hypothesis/focus pairs.
//! * **General prunes** — "pruning the /SyncObject hierarchy from all but
//!   synchronization-related hypotheses" (not history-dependent, but
//!   extracted here for convenience).
//! * **Thresholds** — application-specific values derived from the
//!   magnitudes of the previously observed bottlenecks, keeping the
//!   number of reported bottlenecks in a practically useful range (§4.2).

use crate::record::ExecutionRecord;
use histpc_consultant::{
    HypothesisTree, NodeOutcome, Outcome, PriorityDirective, PriorityLevel, Prune, PruneTarget,
    SearchDirectives, ThresholdDirective,
};
use histpc_instr::PostmortemData;
use histpc_resources::{Focus, ResourceName, CODE, MACHINE, PROCESS, SYNC_OBJECT};
use histpc_sim::SimTime;

/// Minimum number of observed samples behind a true outcome before its
/// magnitude is trusted for threshold derivation. Conclusions drawn from
/// fewer surviving samples (a degraded run) are too noisy to set a
/// threshold that will silently hide future bottlenecks (lint HL022).
pub const MIN_THRESHOLD_SAMPLES: u64 = 3;

/// True if the focus selects any resource the run marked unreachable
/// (a dead machine or process). Directives must never be harvested for
/// such foci: their outcomes reflect the failure, not the program.
fn touches_unreachable(rec: &ExecutionRecord, focus: &Focus) -> bool {
    focus
        .selections()
        .any(|s| !s.is_root() && rec.is_unreachable(s))
}

/// True if the focus selects any resource whose admission breaker opened
/// during the run (the tool was overloaded there). Directives must never
/// be harvested for such foci: outcomes concluded while the tool was
/// shedding that resource's data reflect the overload, not the program
/// (lint HL026).
fn touches_saturated(rec: &ExecutionRecord, focus: &Focus) -> bool {
    focus
        .selections()
        .any(|s| !s.is_root() && rec.is_saturated(s))
}

/// What to extract from a record.
#[derive(Debug, Clone)]
pub struct ExtractionOptions {
    /// Emit High/Low priority directives from true/false outcomes.
    pub priorities: bool,
    /// Emit exact-pair prunes for previously false pairs (historic).
    pub prune_false_pairs: bool,
    /// Emit resource prunes for functions whose observed time fractions
    /// never exceeded `trivial_fraction` (historic).
    pub prune_trivial_functions: bool,
    /// The triviality bound for function pruning.
    pub trivial_fraction: f64,
    /// Prune the Machine hierarchy when processes and nodes map
    /// one-to-one (historic, structural).
    pub prune_redundant_machine: bool,
    /// Emit the general SyncObject prunes for non-sync hypotheses.
    pub general_prunes: bool,
    /// Derive per-hypothesis thresholds from bottleneck magnitudes.
    pub thresholds: bool,
    /// Safety factor under the smallest significant bottleneck when
    /// deriving thresholds (e.g. 0.9 puts the threshold 10% below it).
    pub threshold_margin: f64,
    /// Floor for derived thresholds.
    pub threshold_floor: f64,
}

impl Default for ExtractionOptions {
    fn default() -> ExtractionOptions {
        ExtractionOptions {
            priorities: true,
            prune_false_pairs: false,
            prune_trivial_functions: true,
            trivial_fraction: 0.01,
            prune_redundant_machine: true,
            general_prunes: true,
            thresholds: false,
            threshold_margin: 0.9,
            threshold_floor: 0.02,
        }
    }
}

impl ExtractionOptions {
    /// Only priorities (the paper's "Priorities Only" configuration).
    pub fn priorities_only() -> ExtractionOptions {
        ExtractionOptions {
            priorities: true,
            prune_false_pairs: false,
            prune_trivial_functions: false,
            prune_redundant_machine: false,
            general_prunes: false,
            thresholds: false,
            ..ExtractionOptions::default()
        }
    }

    /// Only general prunes (not application-specific).
    pub fn general_prunes_only() -> ExtractionOptions {
        ExtractionOptions {
            priorities: false,
            prune_false_pairs: false,
            prune_trivial_functions: false,
            prune_redundant_machine: false,
            general_prunes: true,
            thresholds: false,
            ..ExtractionOptions::default()
        }
    }

    /// Only historic prunes (false pairs, trivial functions, redundant
    /// hierarchies).
    pub fn historic_prunes_only() -> ExtractionOptions {
        ExtractionOptions {
            priorities: false,
            prune_false_pairs: true,
            prune_trivial_functions: true,
            prune_redundant_machine: true,
            general_prunes: false,
            thresholds: false,
            ..ExtractionOptions::default()
        }
    }

    /// All prunes, no priorities (the paper's "Prunes Only").
    pub fn all_prunes() -> ExtractionOptions {
        ExtractionOptions {
            priorities: false,
            prune_false_pairs: true,
            prune_trivial_functions: true,
            prune_redundant_machine: true,
            general_prunes: true,
            thresholds: false,
            ..ExtractionOptions::default()
        }
    }

    /// Priorities plus the safe prunes (redundant/irrelevant hierarchies
    /// but *not* previously-false pairs) — the paper's combined
    /// configuration, which "will never miss new behaviors due to
    /// pruning" (§4.1).
    pub fn priorities_and_safe_prunes() -> ExtractionOptions {
        ExtractionOptions {
            priorities: true,
            prune_false_pairs: false,
            prune_trivial_functions: true,
            prune_redundant_machine: true,
            general_prunes: true,
            thresholds: false,
            ..ExtractionOptions::default()
        }
    }

    /// Enable derived thresholds on top of the current options.
    pub fn with_thresholds(mut self) -> ExtractionOptions {
        self.thresholds = true;
        self
    }
}

/// Extracts search directives from one execution record.
pub fn extract(rec: &ExecutionRecord, opts: &ExtractionOptions) -> SearchDirectives {
    let mut d = SearchDirectives::none();

    if opts.general_prunes {
        let sync_object = ResourceName::root(SYNC_OBJECT).expect("valid");
        for hyp in [
            "CPUbound",
            "ExcessiveIOBlockingTime",
            "ExcessiveBarrierWaitingTime",
        ] {
            d.add_prune(Prune {
                hypothesis: Some(hyp.into()),
                target: PruneTarget::Resource(sync_object.clone()),
            });
        }
    }

    if opts.prune_redundant_machine && machine_is_redundant(rec) {
        d.add_prune(Prune {
            hypothesis: None,
            target: PruneTarget::Resource(ResourceName::root(MACHINE).expect("valid")),
        });
    }

    if opts.prune_trivial_functions {
        for f in trivial_functions(rec, opts.trivial_fraction) {
            d.add_prune(Prune {
                hypothesis: None,
                target: PruneTarget::Resource(f),
            });
        }
    }

    if opts.prune_false_pairs {
        for o in rec.false_outcomes() {
            // Skip pairs already removed by a subtree prune above: the
            // exact prune would be dead weight (lint HL005).
            if d.is_pruned(&o.hypothesis, &o.focus) {
                continue;
            }
            // Never prune under a dead or saturated resource: the false
            // conclusion may reflect the death or the overload, not the
            // program (lints HL021, HL026).
            if touches_unreachable(rec, &o.focus) || touches_saturated(rec, &o.focus) {
                continue;
            }
            d.add_prune(Prune {
                hypothesis: Some(o.hypothesis.clone()),
                target: PruneTarget::Pair(o.focus.clone()),
            });
        }
    }

    if opts.priorities {
        for o in &rec.outcomes {
            let level = match o.outcome {
                Outcome::True => PriorityLevel::High,
                // Unknown, Unreachable and Saturated outcomes carry no
                // evidence either way and yield no directive.
                Outcome::False => PriorityLevel::Low,
                _ => continue,
            };
            // A priority on a pair the prunes above already remove can
            // never take effect — the prune wins (lint HL006).
            if d.is_pruned(&o.hypothesis, &o.focus) {
                continue;
            }
            if touches_unreachable(rec, &o.focus) || touches_saturated(rec, &o.focus) {
                continue;
            }
            d.add_priority(PriorityDirective {
                hypothesis: o.hypothesis.clone(),
                focus: o.focus.clone(),
                level,
            });
        }
    }

    if opts.thresholds {
        for t in derive_thresholds(rec, opts) {
            d.add_threshold(t);
        }
    }

    #[cfg(debug_assertions)]
    assert_extraction_invariants(&d, rec);
    d
}

/// Extracted directives must lint clean against their source run. The
/// full linter lives above this crate (`histpc-lint`) and re-verifies
/// this in integration tests; this debug-build check enforces the same
/// invariants at the point of extraction.
#[cfg(debug_assertions)]
fn assert_extraction_invariants(d: &SearchDirectives, rec: &ExecutionRecord) {
    let known: std::collections::HashSet<&ResourceName> = rec.resources.iter().collect();
    let known_or_root = |r: &ResourceName| r.is_root() || known.contains(r);
    for p in &d.priorities {
        debug_assert!(
            !d.is_pruned(&p.hypothesis, &p.focus),
            "extracted priority on pruned pair: {} {}",
            p.hypothesis,
            p.focus
        );
        for s in p.focus.selections() {
            debug_assert!(
                known_or_root(s),
                "extracted priority names unknown resource {s}"
            );
        }
    }
    for pr in &d.prunes {
        match &pr.target {
            PruneTarget::Resource(r) => {
                debug_assert!(
                    known_or_root(r),
                    "extracted prune names unknown resource {r}"
                );
            }
            PruneTarget::Pair(f) => {
                for s in f.selections() {
                    debug_assert!(
                        known_or_root(s),
                        "extracted prune names unknown resource {s}"
                    );
                }
                let shadowed = d.prunes.iter().any(|q| {
                    matches!(q.target, PruneTarget::Resource(_))
                        && (q.hypothesis.is_none() || q.hypothesis == pr.hypothesis)
                        && Prune {
                            hypothesis: None,
                            target: q.target.clone(),
                        }
                        .matches("", f)
                });
                debug_assert!(
                    !shadowed,
                    "extracted pair prune shadowed by subtree prune: {f}"
                );
            }
        }
    }
    for t in &d.thresholds {
        debug_assert!(
            t.value > 0.0 && t.value <= 1.0,
            "extracted threshold {} out of range for {}",
            t.value,
            t.hypothesis
        );
    }
}

/// True if processes and machine nodes map one-to-one in the recorded
/// structure (the MPI-1 static process model), making the Machine
/// hierarchy redundant with the Process hierarchy.
fn machine_is_redundant(rec: &ExecutionRecord) -> bool {
    // A run that lost a node never observed the one-to-one mapping hold
    // end to end, and its Machine-refined experiments may have starved:
    // pruning the hierarchy from such a record could hide a merely
    // unobserved bottleneck. The same holds for a run whose admission
    // layer saturated anywhere — Machine-refined experiments there were
    // shed, not measured.
    if !rec.unreachable.is_empty() || !rec.saturated.is_empty() {
        return false;
    }
    // Count depth-1 resources (children of the roots).
    let nodes = rec
        .resources_in(MACHINE)
        .iter()
        .filter(|r| r.depth() == 1)
        .count();
    let procs = rec
        .resources_in(PROCESS)
        .iter()
        .filter(|r| r.depth() == 1)
        .count();
    nodes > 0 && nodes == procs
}

/// Functions whose observed time fractions stayed below `bound` in every
/// tested pair naming exactly that function (depth-2 Code selection with
/// all other selections at the root).
fn trivial_functions(rec: &ExecutionRecord, bound: f64) -> Vec<ResourceName> {
    let mut out = Vec::new();
    for r in rec.resources_in(CODE) {
        if r.depth() != 2 {
            continue; // functions only
        }
        let tested: Vec<&NodeOutcome> = rec
            .outcomes
            .iter()
            .filter(|o| {
                o.focus.selection(CODE) == Some(r)
                    && o.focus.depth() == 2
                    && matches!(o.outcome, Outcome::True | Outcome::False)
            })
            .collect();
        // Any starved, unreachable or saturated verdict naming the
        // function means its cost was not fully observed — never prune
        // it on that basis.
        let unobserved = rec.outcomes.iter().any(|o| {
            o.focus.selection(CODE) == Some(r)
                && matches!(
                    o.outcome,
                    Outcome::Unknown | Outcome::Unreachable | Outcome::Saturated
                )
        });
        if !unobserved && !tested.is_empty() && tested.iter().all(|o| o.last_value < bound) {
            out.push((*r).clone());
        }
    }
    out
}

/// Derives per-hypothesis thresholds: a margin below the smallest
/// bottleneck value observed for that hypothesis, floored.
fn derive_thresholds(rec: &ExecutionRecord, opts: &ExtractionOptions) -> Vec<ThresholdDirective> {
    let mut out = Vec::new();
    let hyps: Vec<String> = {
        let mut v: Vec<String> = rec.outcomes.iter().map(|o| o.hypothesis.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    for h in hyps {
        // Only well-observed conclusions contribute: a magnitude
        // computed from a trickle of surviving samples in a degraded
        // run must not set the bar for future runs (lint HL022).
        let min_true = rec
            .true_outcomes()
            .filter(|o| o.hypothesis == h && o.samples >= MIN_THRESHOLD_SAMPLES)
            .map(|o| o.last_value)
            .fold(f64::INFINITY, f64::min);
        if min_true.is_finite() {
            let value = (min_true * opts.threshold_margin).max(opts.threshold_floor);
            out.push(ThresholdDirective {
                hypothesis: h,
                value: value.min(1.0),
            });
        }
    }
    out
}

/// Builds an execution record by testing hypotheses *postmortem* against
/// raw full-resolution data (the paper's §6 extension: extracting search
/// directives when no Search History Graph is available, e.g. from data
/// gathered with a different monitoring tool).
///
/// The search structure mirrors the online PC: start at the whole
/// program, refine only true nodes, conclude against the given
/// thresholds — but data is free, so no cost throttling applies and no
/// timestamps are produced.
pub fn postmortem_record(
    pm: &PostmortemData,
    tree: &HypothesisTree,
    directives: &SearchDirectives,
    label: &str,
) -> ExecutionRecord {
    let mut outcomes = Vec::new();
    let whole = pm.space().whole_program();
    let mut frontier: Vec<(histpc_consultant::HypothesisId, Focus)> = tree
        .children(tree.root())
        .into_iter()
        .map(|h| (h, whole.clone()))
        .collect();
    let mut seen: std::collections::HashSet<(u16, Focus)> = Default::default();
    while let Some((h, f)) = frontier.pop() {
        if !seen.insert((h.0, f.clone())) {
            continue;
        }
        let hyp = tree.get(h);
        let name = hyp.name.clone();
        if directives.is_pruned(&name, &f) {
            outcomes.push(NodeOutcome {
                hypothesis: name,
                focus: f,
                outcome: Outcome::Pruned,
                first_true_at: None,
                concluded_at: None,
                last_value: 0.0,
                samples: 0,
            });
            continue;
        }
        let metric = hyp.metric.expect("frontier holds metric hypotheses");
        let fraction = pm.fraction(metric, &f);
        let threshold = directives
            .threshold_for(&name)
            .unwrap_or(hyp.default_threshold);
        let outcome = if fraction > threshold {
            Outcome::True
        } else {
            Outcome::False
        };
        if outcome == Outcome::True {
            for h2 in tree.children(h) {
                frontier.push((h2, f.clone()));
            }
            for child in pm.space().refine(&f) {
                frontier.push((h, child));
            }
        }
        outcomes.push(NodeOutcome {
            hypothesis: name,
            focus: f,
            outcome,
            first_true_at: None,
            concluded_at: None,
            last_value: fraction,
            // Postmortem conclusions see the full-resolution data, so
            // they are always well-observed.
            samples: MIN_THRESHOLD_SAMPLES,
        });
    }
    let resources = pm
        .space()
        .hierarchies()
        .iter()
        .flat_map(|h| h.all_names())
        .collect();
    let pairs = outcomes
        .iter()
        .filter(|o| o.outcome != Outcome::Pruned)
        .count();
    ExecutionRecord {
        app_name: pm.binder().app().name.clone(),
        app_version: pm.binder().app().version.clone(),
        label: label.to_string(),
        resources,
        outcomes,
        thresholds_used: Vec::new(),
        end_time: pm.end_time(),
        pairs_tested: pairs,
        unreachable: Vec::new(),
        saturated: Vec::new(),
    }
}

/// Derives an application-specific threshold for one hypothesis from a
/// run's raw profile (postmortem data), as in the paper's §4.2 where the
/// full performance profile — not just the previous search's outcomes —
/// identifies the useful setting (12% for the MPI code, 20% for PVM).
///
/// Method: evaluate the hypothesis over the whole focus lattice at an
/// exploratory `floor` threshold, sort the observed fractions, and place
/// the threshold a margin below the smallest member of the significant
/// cluster — found as the largest relative gap in the distribution.
/// Returns `None` when the hypothesis has no values above the floor.
pub fn derive_threshold_from_profile(
    pm: &PostmortemData,
    tree: &HypothesisTree,
    hypothesis: &str,
    floor: f64,
    margin: f64,
) -> Option<f64> {
    let mut exploratory = SearchDirectives::none();
    exploratory.add_threshold(ThresholdDirective {
        hypothesis: hypothesis.to_string(),
        value: floor,
    });
    let rec = postmortem_record(pm, tree, &exploratory, "profile");
    let mut vals: Vec<f64> = rec
        .outcomes
        .iter()
        .filter(|o| o.hypothesis == hypothesis && o.outcome == Outcome::True)
        .map(|o| o.last_value)
        .collect();
    vals.sort_by(|a, b| b.total_cmp(a));
    vals.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    if vals.is_empty() {
        return None;
    }
    // The significant cluster ends at the largest relative gap. Only
    // cuts in the plausible threshold range matter: a threshold above
    // 50% of execution time would hide even a dominant bottleneck.
    let mut cut = vals.len() - 1;
    let mut best_ratio = 1.0;
    for i in 0..vals.len() - 1 {
        if vals[i] > 0.5 {
            continue;
        }
        let ratio = vals[i] / vals[i + 1].max(1e-9);
        if ratio > best_ratio {
            best_ratio = ratio;
            cut = i;
        }
    }
    Some((vals[cut] * margin).max(floor).min(1.0))
}

/// The ground-truth bottleneck set of a run: every (hypothesis, focus)
/// that tests true postmortem. Used to define the "100% of bottlenecks"
/// baseline of Table 1.
pub fn ground_truth(
    pm: &PostmortemData,
    tree: &HypothesisTree,
    directives: &SearchDirectives,
) -> Vec<(String, Focus)> {
    postmortem_record(pm, tree, directives, "truth")
        .outcomes
        .into_iter()
        .filter(|o| o.outcome == Outcome::True)
        .map(|o| (o.hypothesis, o.focus))
        .collect()
}

/// A helper: the time the *record's own run* reported each of the given
/// bottlenecks (for evaluating percentile detection times).
pub fn detection_times(rec: &ExecutionRecord, truth: &[(String, Focus)]) -> Vec<Option<SimTime>> {
    truth
        .iter()
        .map(|(h, f)| {
            rec.outcomes
                .iter()
                .find(|o| &o.hypothesis == h && &o.focus == f)
                .and_then(|o| o.first_true_at)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::ResourceSpace;

    fn space() -> ResourceSpace {
        let mut s = ResourceSpace::new();
        for r in [
            "/Code/a.c/hot",
            "/Code/a.c/tiny",
            "/Machine/n1",
            "/Machine/n2",
            "/Process/p1",
            "/Process/p2",
            "/SyncObject/Message/7",
        ] {
            s.add_resource(&ResourceName::parse(r).unwrap()).unwrap();
        }
        s
    }

    fn rec_with(outcomes: Vec<NodeOutcome>) -> ExecutionRecord {
        ExecutionRecord {
            app_name: "app".into(),
            app_version: "1".into(),
            label: "r1".into(),
            resources: space()
                .hierarchies()
                .iter()
                .flat_map(|h| h.all_names())
                .collect(),
            outcomes,
            thresholds_used: vec![],
            end_time: SimTime::from_secs(10),
            pairs_tested: 0,
            unreachable: vec![],
            saturated: vec![],
        }
    }

    fn o(hyp: &str, sels: &[&str], out: Outcome, value: f64) -> NodeOutcome {
        let mut f = space().whole_program();
        for s in sels {
            f = f.with_selection(ResourceName::parse(s).unwrap());
        }
        NodeOutcome {
            hypothesis: hyp.into(),
            focus: f,
            outcome: out,
            first_true_at: (out == Outcome::True).then(|| SimTime::from_secs(1)),
            concluded_at: Some(SimTime::from_secs(1)),
            last_value: value,
            samples: MIN_THRESHOLD_SAMPLES,
        }
    }

    #[test]
    fn priorities_follow_paper_rule() {
        let rec = rec_with(vec![
            o("CPUbound", &[], Outcome::True, 0.4),
            o("CPUbound", &["/Code/a.c"], Outcome::False, 0.05),
            o("ExcessiveIOBlockingTime", &[], Outcome::Pruned, 0.0),
        ]);
        let d = extract(&rec, &ExtractionOptions::priorities_only());
        assert_eq!(d.priorities.len(), 2);
        assert_eq!(
            d.priority_of("CPUbound", &space().whole_program()),
            PriorityLevel::High
        );
        let module = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Code/a.c").unwrap());
        assert_eq!(d.priority_of("CPUbound", &module), PriorityLevel::Low);
        assert!(d.prunes.is_empty());
        assert!(d.thresholds.is_empty());
    }

    #[test]
    fn general_prunes_cover_non_sync_hypotheses() {
        let rec = rec_with(vec![]);
        let d = extract(&rec, &ExtractionOptions::general_prunes_only());
        let sync_focus = space()
            .whole_program()
            .with_selection(ResourceName::parse("/SyncObject/Message").unwrap());
        assert!(d.is_pruned("CPUbound", &sync_focus));
        assert!(d.is_pruned("ExcessiveIOBlockingTime", &sync_focus));
        assert!(!d.is_pruned("ExcessiveSyncWaitingTime", &sync_focus));
    }

    #[test]
    fn redundant_machine_hierarchy_is_pruned() {
        let rec = rec_with(vec![]);
        let d = extract(&rec, &ExtractionOptions::historic_prunes_only());
        let machine_focus = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Machine/n1").unwrap());
        assert!(d.is_pruned("CPUbound", &machine_focus));
        // The unconstrained root is not pruned.
        assert!(!d.is_pruned("CPUbound", &space().whole_program()));
    }

    #[test]
    fn machine_prune_skipped_when_not_one_to_one() {
        let mut rec = rec_with(vec![]);
        rec.resources
            .push(ResourceName::parse("/Process/p3").unwrap());
        let d = extract(&rec, &ExtractionOptions::historic_prunes_only());
        let machine_focus = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Machine/n1").unwrap());
        assert!(!d.is_pruned("CPUbound", &machine_focus));
    }

    #[test]
    fn trivial_functions_are_pruned() {
        let rec = rec_with(vec![
            o("CPUbound", &["/Code/a.c/tiny"], Outcome::False, 0.001),
            o(
                "ExcessiveSyncWaitingTime",
                &["/Code/a.c/tiny"],
                Outcome::False,
                0.002,
            ),
            o("CPUbound", &["/Code/a.c/hot"], Outcome::True, 0.5),
        ]);
        let d = extract(&rec, &ExtractionOptions::historic_prunes_only());
        let tiny = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Code/a.c/tiny").unwrap());
        let hot = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Code/a.c/hot").unwrap());
        assert!(d.is_pruned("CPUbound", &tiny));
        assert!(!d.is_pruned("CPUbound", &hot));
    }

    #[test]
    fn false_pairs_become_exact_prunes() {
        let rec = rec_with(vec![o("CPUbound", &["/Code/a.c"], Outcome::False, 0.05)]);
        let d = extract(&rec, &ExtractionOptions::historic_prunes_only());
        let module = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Code/a.c").unwrap());
        assert!(d.is_pruned("CPUbound", &module));
        // Children of the false pair are NOT matched by the exact prune
        // (they are unreachable anyway since the parent never tests true).
        let func = module.with_selection(ResourceName::parse("/Code/a.c/hot").unwrap());
        assert!(!d.is_pruned("CPUbound", &func));
    }

    #[test]
    fn combined_options_exclude_false_pair_prunes() {
        let rec = rec_with(vec![o("CPUbound", &["/Code/a.c"], Outcome::False, 0.05)]);
        let d = extract(&rec, &ExtractionOptions::priorities_and_safe_prunes());
        let module = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Code/a.c").unwrap());
        // Not pruned (safe mode), but down-prioritized.
        assert!(!d.is_pruned("CPUbound", &module));
        assert_eq!(d.priority_of("CPUbound", &module), PriorityLevel::Low);
    }

    #[test]
    fn thresholds_land_below_smallest_bottleneck() {
        let rec = rec_with(vec![
            o("ExcessiveSyncWaitingTime", &[], Outcome::True, 0.72),
            o(
                "ExcessiveSyncWaitingTime",
                &["/Code/a.c"],
                Outcome::True,
                0.14,
            ),
            o("CPUbound", &[], Outcome::False, 0.1),
        ]);
        let opts = ExtractionOptions::priorities_only().with_thresholds();
        let d = extract(&rec, &opts);
        let t = d.threshold_for("ExcessiveSyncWaitingTime").unwrap();
        assert!((t - 0.126).abs() < 1e-9, "threshold was {t}");
        // CPUbound had no true outcomes: no derived threshold.
        assert_eq!(d.threshold_for("CPUbound"), None);
    }

    #[test]
    fn unknown_and_unreachable_outcomes_yield_no_directives() {
        let rec = rec_with(vec![
            o("CPUbound", &["/Code/a.c"], Outcome::Unknown, 0.0),
            o(
                "ExcessiveSyncWaitingTime",
                &["/Process/p2"],
                Outcome::Unreachable,
                0.0,
            ),
        ]);
        let d = extract(
            &rec,
            &ExtractionOptions {
                prune_false_pairs: true,
                ..ExtractionOptions::priorities_only()
            },
        );
        assert!(d.priorities.is_empty(), "got {:?}", d.priorities);
        assert!(d.prunes.is_empty(), "got {:?}", d.prunes);
    }

    #[test]
    fn foci_on_dead_resources_are_never_harvested() {
        let mut rec = rec_with(vec![
            // A false conclusion drawn while p2's node was dying.
            o("CPUbound", &["/Process/p2"], Outcome::False, 0.0),
            o("CPUbound", &["/Process/p1"], Outcome::False, 0.001),
        ]);
        rec.unreachable
            .push(ResourceName::parse("/Process/p2").unwrap());
        let d = extract(
            &rec,
            &ExtractionOptions {
                priorities: true,
                prune_false_pairs: true,
                prune_trivial_functions: false,
                prune_redundant_machine: false,
                general_prunes: false,
                ..ExtractionOptions::default()
            },
        );
        let p2 = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Process/p2").unwrap());
        let p1 = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Process/p1").unwrap());
        assert!(!d.is_pruned("CPUbound", &p2), "dead-process pair pruned");
        assert!(d.is_pruned("CPUbound", &p1), "live-process pair kept");
        assert_eq!(d.priority_of("CPUbound", &p2), PriorityLevel::Medium);
    }

    #[test]
    fn foci_on_saturated_resources_are_never_harvested() {
        let mut rec = rec_with(vec![
            // A false conclusion drawn while p2's collector was shedding.
            o("CPUbound", &["/Process/p2"], Outcome::False, 0.0),
            o("CPUbound", &["/Process/p1"], Outcome::False, 0.001),
        ]);
        rec.saturated
            .push(ResourceName::parse("/Process/p2").unwrap());
        let d = extract(
            &rec,
            &ExtractionOptions {
                priorities: true,
                prune_false_pairs: true,
                prune_trivial_functions: false,
                prune_redundant_machine: false,
                general_prunes: false,
                ..ExtractionOptions::default()
            },
        );
        let p2 = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Process/p2").unwrap());
        let p1 = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Process/p1").unwrap());
        assert!(
            !d.is_pruned("CPUbound", &p2),
            "saturated-process pair pruned"
        );
        assert!(d.is_pruned("CPUbound", &p1), "live-process pair kept");
        assert_eq!(d.priority_of("CPUbound", &p2), PriorityLevel::Medium);
    }

    #[test]
    fn saturated_run_blocks_machine_prune() {
        let mut rec = rec_with(vec![]);
        rec.saturated
            .push(ResourceName::parse("/Process/p1").unwrap());
        let d = extract(&rec, &ExtractionOptions::historic_prunes_only());
        let machine_focus = space()
            .whole_program()
            .with_selection(ResourceName::parse("/Machine/n1").unwrap());
        assert!(!d.is_pruned("CPUbound", &machine_focus));
    }

    #[test]
    fn starved_true_outcomes_do_not_set_thresholds() {
        let mut starved = o("ExcessiveSyncWaitingTime", &[], Outcome::True, 0.05);
        starved.samples = MIN_THRESHOLD_SAMPLES - 1;
        let rec = rec_with(vec![
            starved,
            o(
                "ExcessiveSyncWaitingTime",
                &["/Code/a.c"],
                Outcome::True,
                0.4,
            ),
        ]);
        let opts = ExtractionOptions::priorities_only().with_thresholds();
        let d = extract(&rec, &opts);
        // The under-observed 0.05 is ignored; the threshold derives from
        // the well-observed 0.4.
        let t = d.threshold_for("ExcessiveSyncWaitingTime").unwrap();
        assert!((t - 0.36).abs() < 1e-9, "threshold was {t}");
    }

    #[test]
    fn threshold_floor_applies() {
        let rec = rec_with(vec![o(
            "ExcessiveSyncWaitingTime",
            &[],
            Outcome::True,
            0.005,
        )]);
        let opts = ExtractionOptions::priorities_only().with_thresholds();
        let d = extract(&rec, &opts);
        assert_eq!(d.threshold_for("ExcessiveSyncWaitingTime"), Some(0.02));
    }
}
