//! Crash-safe session leases for the `histpcd` daemon.
//!
//! Every diagnosis session the daemon accepts writes a *lease* under
//! `<root>/LEASES/` before any work runs. The lease is the daemon's
//! write-ahead intent record at session granularity: checksum-framed
//! like store records ([`crate::frame`]) and installed with the same
//! tmp+rename discipline, so a lease is either fully present or absent
//! — never torn. The payload is a small line-oriented text:
//!
//! ```text
//! histpcd-lease v1
//! tenant team-a
//! app poisson-a
//! label run7
//! epoch 3
//! state active
//! ```
//!
//! On a clean completion the daemon removes the lease. A killed daemon
//! leaves leases behind; the next incarnation scans them *before
//! accepting new work* and, for each one, either re-adopts the session
//! from its store checkpoint, marks it completed (a record already
//! exists), or classifies it abandoned. A lease with no matching
//! checkpoint is an orphaned daemon session — surfaced by lint code
//! HL035 via [`orphaned_leases_at`], the lease-side twin of
//! [`crate::store::orphaned_checkpoints_at`].
//!
//! The `LEASES/` directory also persists the monotonic *lease epoch*
//! (`LEASES/EPOCH`): a daemon-incarnation counter bumped by
//! [`next_epoch`] on every start and fed to
//! [`crate::lock::set_lease_epoch`], so advisory-lock staleness can
//! tell a pre-crash incarnation's locks from a live foreign holder.

use std::io;
use std::path::{Path, PathBuf};

use crate::frame;

/// Directory under the store root that holds lease files and the epoch
/// counter. Excluded from manifest/fsck data-file scans — leases are
/// daemon control state, not execution records.
pub const LEASE_DIR: &str = "LEASES";

/// Header line of a lease payload.
pub const LEASE_HEADER: &str = "histpcd-lease v1";

/// Header line of the epoch counter payload.
pub const EPOCH_HEADER: &str = "histpcd-epoch v1";

/// File name of the persisted epoch counter inside [`LEASE_DIR`].
pub const EPOCH_FILE: &str = "EPOCH";

/// One daemon session lease.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Tenant that owns the session.
    pub tenant: String,
    /// Application the session diagnoses (store directory name).
    pub app: String,
    /// Execution label of the session.
    pub label: String,
    /// Lease epoch of the daemon incarnation that accepted the session.
    pub epoch: u64,
    /// Lifecycle state; currently always `active` (a completed session
    /// deletes its lease rather than rewriting it).
    pub state: String,
    /// Opaque one-line session spec the daemon needs to re-adopt the
    /// session (start-request parameters, percent-encoded by the
    /// caller). Empty when unknown; never contains a newline.
    pub spec: String,
}

impl Lease {
    /// Serialize the lease payload (unframed).
    pub fn to_text(&self) -> String {
        let mut text = format!(
            "{LEASE_HEADER}\ntenant {}\napp {}\nlabel {}\nepoch {}\nstate {}\n",
            self.tenant, self.app, self.label, self.epoch, self.state
        );
        if !self.spec.is_empty() {
            text.push_str(&format!("spec {}\n", self.spec));
        }
        text
    }

    /// Parse a lease payload (after frame decoding).
    pub fn parse(text: &str) -> Result<Lease, String> {
        let mut lines = text.lines();
        let header = lines.next().map(str::trim).unwrap_or("");
        if header != LEASE_HEADER {
            return Err(format!("bad lease header `{header}`"));
        }
        let mut lease = Lease {
            tenant: String::new(),
            app: String::new(),
            label: String::new(),
            epoch: 0,
            state: String::new(),
            spec: String::new(),
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "tenant" => lease.tenant = value.to_string(),
                "app" => lease.app = value.to_string(),
                "label" => lease.label = value.to_string(),
                "epoch" => {
                    lease.epoch = value
                        .parse()
                        .map_err(|_| format!("bad lease epoch `{value}`"))?;
                }
                "state" => lease.state = value.to_string(),
                "spec" => lease.spec = value.to_string(),
                other => return Err(format!("unknown lease field `{other}`")),
            }
        }
        if lease.tenant.is_empty() || lease.app.is_empty() || lease.label.is_empty() {
            return Err("lease missing tenant/app/label".into());
        }
        Ok(lease)
    }
}

/// Replace filesystem-hostile characters so tenant/label strings can
/// name a lease file.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Path of the lease file for a (tenant, label) session. A short
/// checksum of the raw pair keeps sanitized collisions apart.
pub fn lease_path(root: &Path, tenant: &str, label: &str) -> PathBuf {
    let digest = frame::fnv64(format!("{tenant}\n{label}").as_bytes()) & 0xffff_ffff;
    root.join(LEASE_DIR).join(format!(
        "{}--{}-{digest:08x}.lease",
        sanitize(tenant),
        sanitize(label)
    ))
}

/// Atomically install `text` at `path` (tmp+rename, fsynced), framed by
/// the caller.
fn atomic_install(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("lease.tmp");
    {
        use std::io::Write;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Write (or overwrite) a session lease, checksum-framed and installed
/// atomically. Creates `LEASES/` on first use.
pub fn write_lease(root: &Path, lease: &Lease) -> io::Result<()> {
    let path = lease_path(root, &lease.tenant, &lease.label);
    std::fs::create_dir_all(root.join(LEASE_DIR))?;
    atomic_install(&path, &frame::encode(&lease.to_text()))
}

/// Remove a session lease; `Ok(false)` if none existed.
pub fn remove_lease(root: &Path, tenant: &str, label: &str) -> io::Result<bool> {
    match std::fs::remove_file(lease_path(root, tenant, label)) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
        Err(e) => Err(e),
    }
}

/// Every lease file under the store root: `(file name, parse result)`,
/// sorted by file name. A lease whose frame or payload is damaged
/// reports the error text instead of a lease — callers decide whether
/// that is fatal (daemon adoption treats it as abandoned; lint flags
/// it).
pub fn read_leases(root: &Path) -> io::Result<Vec<(String, Result<Lease, String>)>> {
    let dir = root.join(LEASE_DIR);
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().to_string();
        if !name.ends_with(".lease") {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())?;
        let parsed = match frame::decode(&text) {
            Ok(d) => Lease::parse(d.payload()),
            Err(e) => Err(e.to_string()),
        };
        out.push((name, parsed));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Orphaned daemon sessions: every readable lease whose session has no
/// matching checkpoint (`<app>/<label>.ckpt`) under the same store
/// root, plus every damaged lease file. Returns
/// `(file name, description)` pairs, sorted — the scan behind lint code
/// HL035, read-only like
/// [`crate::store::orphaned_checkpoints_at`].
pub fn orphaned_leases_at(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for (file, parsed) in read_leases(root)? {
        match parsed {
            Ok(lease) => {
                let ckpt = root.join(&lease.app).join(format!("{}.ckpt", lease.label));
                if !ckpt.exists() {
                    out.push((
                        file,
                        format!(
                            "tenant {} session {}/{} has no checkpoint",
                            lease.tenant, lease.app, lease.label
                        ),
                    ));
                }
            }
            Err(why) => out.push((file, format!("damaged lease: {why}"))),
        }
    }
    out.sort();
    Ok(out)
}

/// Read the persisted lease epoch (0 if absent or damaged).
pub fn current_epoch(root: &Path) -> u64 {
    let path = root.join(LEASE_DIR).join(EPOCH_FILE);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return 0;
    };
    let Ok(decoded) = frame::decode(&text) else {
        return 0;
    };
    let mut lines = decoded.payload().lines();
    if lines.next().map(str::trim) != Some(EPOCH_HEADER) {
        return 0;
    }
    lines
        .next()
        .and_then(|l| l.trim().strip_prefix("epoch "))
        .and_then(|e| e.trim().parse().ok())
        .unwrap_or(0)
}

/// Advance and persist the lease epoch for a new daemon incarnation:
/// one past the maximum of the persisted counter and every epoch any
/// existing lease names (so a damaged counter file cannot roll the
/// epoch backwards past live leases). The new value is installed
/// atomically before being returned.
pub fn next_epoch(root: &Path) -> io::Result<u64> {
    let mut base = current_epoch(root);
    for (_, parsed) in read_leases(root)? {
        if let Ok(lease) = parsed {
            base = base.max(lease.epoch);
        }
    }
    let next = base + 1;
    std::fs::create_dir_all(root.join(LEASE_DIR))?;
    let payload = format!("{EPOCH_HEADER}\nepoch {next}\n");
    atomic_install(
        &root.join(LEASE_DIR).join(EPOCH_FILE),
        &frame::encode(&payload),
    )?;
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-lease-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn lease(tenant: &str, app: &str, label: &str, epoch: u64) -> Lease {
        Lease {
            tenant: tenant.into(),
            app: app.into(),
            label: label.into(),
            epoch,
            state: "active".into(),
            spec: String::new(),
        }
    }

    #[test]
    fn lease_text_round_trips() {
        let mut l = lease("team-a", "poisson-a", "run7", 3);
        assert_eq!(Lease::parse(&l.to_text()).unwrap(), l);
        l.spec = "app=poisson-a seed=7".into();
        assert_eq!(Lease::parse(&l.to_text()).unwrap(), l);
        assert!(Lease::parse("nope\n").is_err());
        assert!(Lease::parse(LEASE_HEADER).is_err(), "missing fields");
        assert!(Lease::parse(&format!("{LEASE_HEADER}\nepoch x\n")).is_err());
    }

    #[test]
    fn write_read_remove_lease() {
        let root = scratch("wrr");
        let l = lease("t1", "poisson", "a1", 2);
        write_lease(&root, &l).unwrap();
        let read = read_leases(&root).unwrap();
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].1.as_ref().unwrap(), &l);
        assert!(remove_lease(&root, "t1", "a1").unwrap());
        assert!(!remove_lease(&root, "t1", "a1").unwrap());
        assert!(read_leases(&root).unwrap().is_empty());
    }

    #[test]
    fn hostile_tenant_names_stay_distinct() {
        let root = scratch("hostile");
        write_lease(&root, &lease("a/b", "poisson", "x", 1)).unwrap();
        write_lease(&root, &lease("a b", "poisson", "x", 1)).unwrap();
        assert_eq!(read_leases(&root).unwrap().len(), 2);
    }

    #[test]
    fn orphan_scan_flags_leases_without_checkpoints() {
        let root = scratch("orphan");
        write_lease(&root, &lease("t1", "poisson", "crashed", 1)).unwrap();
        write_lease(&root, &lease("t1", "poisson", "running", 1)).unwrap();
        std::fs::create_dir_all(root.join("poisson")).unwrap();
        std::fs::write(root.join("poisson").join("running.ckpt"), "x").unwrap();
        // A damaged lease file is an orphan too.
        std::fs::write(root.join(LEASE_DIR).join("torn.lease"), "histpc-frame v1 9").unwrap();
        let orphans = orphaned_leases_at(&root).unwrap();
        assert_eq!(orphans.len(), 2);
        assert!(orphans
            .iter()
            .any(|(_, why)| why.contains("poisson/crashed")));
        assert!(orphans.iter().any(|(_, why)| why.contains("damaged lease")));
        assert!(!orphans
            .iter()
            .any(|(_, why)| why.contains("poisson/running")));
    }

    #[test]
    fn epoch_is_monotonic_and_lease_aware() {
        let root = scratch("epoch");
        assert_eq!(current_epoch(&root), 0);
        assert_eq!(next_epoch(&root).unwrap(), 1);
        assert_eq!(current_epoch(&root), 1);
        assert_eq!(next_epoch(&root).unwrap(), 2);
        // A damaged counter cannot roll backwards past a live lease.
        write_lease(&root, &lease("t1", "poisson", "a1", 9)).unwrap();
        std::fs::write(root.join(LEASE_DIR).join(EPOCH_FILE), "garbage").unwrap();
        assert_eq!(current_epoch(&root), 0);
        assert_eq!(next_epoch(&root).unwrap(), 10);
    }
}
