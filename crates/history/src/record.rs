//! Execution records: what one run leaves behind.
//!
//! "After each run of the Performance Consultant, we have the search
//! history graph and the program's resource hierarchies. These results are
//! used to generate search directives to be used in subsequent runs."
//! (paper §3.2)

use histpc_consultant::{DiagnosisReport, NodeOutcome, Outcome};
use histpc_resources::{ResourceName, ResourceSpace};
use histpc_sim::SimTime;

/// The persisted result of one execution of an application.
#[derive(Debug, Clone)]
pub struct ExecutionRecord {
    /// Application name.
    pub app_name: String,
    /// Application version label (e.g. `A`).
    pub app_version: String,
    /// Run label (e.g. `a1`).
    pub label: String,
    /// All resource names discovered during the run (the flattened
    /// resource hierarchies).
    pub resources: Vec<ResourceName>,
    /// Outcome of every hypothesis/focus pair the search touched.
    pub outcomes: Vec<NodeOutcome>,
    /// Thresholds in effect during the run, per hypothesis.
    pub thresholds_used: Vec<(String, f64)>,
    /// Application time when the search ended.
    pub end_time: SimTime,
    /// Total hypothesis/focus pairs instrumented.
    pub pairs_tested: usize,
    /// Resources (machines, processes) that died during the run. Empty
    /// for healthy runs; directive extraction never prunes under these.
    pub unreachable: Vec<ResourceName>,
    /// Resources whose admission circuit breaker opened during the run
    /// (the tool was overloaded there, shedding requests or data). Empty
    /// for unloaded runs; directive extraction never harvests under these.
    pub saturated: Vec<ResourceName>,
}

impl ExecutionRecord {
    /// Builds a record from a finished diagnosis session.
    pub fn from_report(
        report: &DiagnosisReport,
        space: &ResourceSpace,
        label: &str,
        thresholds_used: Vec<(String, f64)>,
    ) -> ExecutionRecord {
        let mut resources = Vec::new();
        for h in space.hierarchies() {
            resources.extend(h.all_names());
        }
        ExecutionRecord {
            app_name: report.app_name.clone(),
            app_version: report.app_version.clone(),
            label: label.to_string(),
            resources,
            outcomes: report.outcomes.clone(),
            thresholds_used,
            end_time: report.end_time,
            pairs_tested: report.pairs_tested,
            unreachable: report.unreachable.clone(),
            saturated: report.saturated.clone(),
        }
    }

    /// True if `r` is (or lives under) a resource the run marked
    /// unreachable.
    pub fn is_unreachable(&self, r: &ResourceName) -> bool {
        self.unreachable.iter().any(|u| u == r || u.is_prefix_of(r))
    }

    /// True if `r` is (or lives under) a resource the run marked
    /// saturated (its admission breaker opened under overload).
    pub fn is_saturated(&self, r: &ResourceName) -> bool {
        self.saturated.iter().any(|u| u == r || u.is_prefix_of(r))
    }

    /// The true (bottleneck) outcomes.
    pub fn true_outcomes(&self) -> impl Iterator<Item = &NodeOutcome> {
        self.outcomes.iter().filter(|o| o.outcome == Outcome::True)
    }

    /// The false outcomes.
    pub fn false_outcomes(&self) -> impl Iterator<Item = &NodeOutcome> {
        self.outcomes.iter().filter(|o| o.outcome == Outcome::False)
    }

    /// The resources of one hierarchy, e.g. all `/Code/...` names.
    pub fn resources_in(&self, hierarchy: &str) -> Vec<&ResourceName> {
        self.resources
            .iter()
            .filter(|r| r.hierarchy() == hierarchy)
            .collect()
    }

    /// Rebuilds a [`ResourceSpace`] from the recorded resource list.
    pub fn rebuild_space(&self) -> ResourceSpace {
        let mut s = ResourceSpace::new();
        for r in &self.resources {
            s.add_resource(r).expect("recorded names are valid");
        }
        s
    }

    /// The threshold used for one hypothesis, if recorded.
    pub fn threshold_used(&self, hypothesis: &str) -> Option<f64> {
        self.thresholds_used
            .iter()
            .find(|(h, _)| h == hypothesis)
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> (DiagnosisReport, ResourceSpace) {
        let mut space = ResourceSpace::new();
        for r in [
            "/Code/a.c/f",
            "/Code/b.c/g",
            "/Machine/n1",
            "/Process/p1",
            "/SyncObject/Message/7",
        ] {
            space
                .add_resource(&ResourceName::parse(r).unwrap())
                .unwrap();
        }
        let wp = space.whole_program();
        let report = DiagnosisReport {
            app_name: "app".into(),
            app_version: "1".into(),
            outcomes: vec![
                NodeOutcome {
                    hypothesis: "CPUbound".into(),
                    focus: wp.clone(),
                    outcome: Outcome::True,
                    first_true_at: Some(SimTime::from_secs(3)),
                    concluded_at: Some(SimTime::from_secs(3)),
                    last_value: 0.4,
                    samples: 6,
                },
                NodeOutcome {
                    hypothesis: "ExcessiveIOBlockingTime".into(),
                    focus: wp.clone(),
                    outcome: Outcome::False,
                    first_true_at: None,
                    concluded_at: Some(SimTime::from_secs(3)),
                    last_value: 0.01,
                    samples: 6,
                },
            ],
            pairs_tested: 7,
            end_time: SimTime::from_secs(9),
            peak_cost: 0.04,
            quiescent: true,
            unreachable: Vec::new(),
            saturated: Vec::new(),
            admission: Default::default(),
            shg_rendering: String::new(),
            audits: Vec::new(),
        };
        (report, space)
    }

    #[test]
    fn from_report_captures_everything() {
        let (report, space) = sample_report();
        let rec =
            ExecutionRecord::from_report(&report, &space, "r1", vec![("CPUbound".into(), 0.2)]);
        assert_eq!(rec.app_name, "app");
        assert_eq!(rec.label, "r1");
        assert_eq!(rec.outcomes.len(), 2);
        assert_eq!(rec.true_outcomes().count(), 1);
        assert_eq!(rec.false_outcomes().count(), 1);
        assert_eq!(rec.pairs_tested, 7);
        assert_eq!(rec.threshold_used("CPUbound"), Some(0.2));
        assert_eq!(rec.threshold_used("Other"), None);
        // Roots + leaves + intermediates all present.
        assert!(rec
            .resources
            .contains(&ResourceName::parse("/Code/a.c/f").unwrap()));
        assert!(rec
            .resources
            .contains(&ResourceName::parse("/Code").unwrap()));
    }

    #[test]
    fn rebuild_space_roundtrips() {
        let (report, space) = sample_report();
        let rec = ExecutionRecord::from_report(&report, &space, "r1", vec![]);
        let rebuilt = rec.rebuild_space();
        assert_eq!(rebuilt.len(), space.len());
        for r in &rec.resources {
            assert!(rebuilt.contains(r));
        }
    }

    #[test]
    fn is_unreachable_covers_descendants() {
        let (report, space) = sample_report();
        let mut rec = ExecutionRecord::from_report(&report, &space, "r1", vec![]);
        assert!(rec.unreachable.is_empty());
        rec.unreachable
            .push(ResourceName::parse("/Machine/n1").unwrap());
        assert!(rec.is_unreachable(&ResourceName::parse("/Machine/n1").unwrap()));
        assert!(rec.is_unreachable(&ResourceName::parse("/Machine/n1/cpu0").unwrap()));
        assert!(!rec.is_unreachable(&ResourceName::parse("/Machine/n2").unwrap()));
        assert!(!rec.is_unreachable(&ResourceName::parse("/Process/p1").unwrap()));
    }

    #[test]
    fn is_saturated_covers_descendants() {
        let (report, space) = sample_report();
        let mut rec = ExecutionRecord::from_report(&report, &space, "r1", vec![]);
        assert!(rec.saturated.is_empty());
        rec.saturated
            .push(ResourceName::parse("/Process/p1").unwrap());
        assert!(rec.is_saturated(&ResourceName::parse("/Process/p1").unwrap()));
        assert!(!rec.is_saturated(&ResourceName::parse("/Machine/n1").unwrap()));
        assert!(!rec.is_unreachable(&ResourceName::parse("/Process/p1").unwrap()));
    }

    #[test]
    fn resources_in_filters_by_hierarchy() {
        let (report, space) = sample_report();
        let rec = ExecutionRecord::from_report(&report, &space, "r1", vec![]);
        let code = rec.resources_in("Code");
        assert!(code.iter().all(|r| r.hierarchy() == "Code"));
        assert_eq!(code.len(), 5); // root, a.c, f, b.c, g
    }
}
