//! Checksum framing for stored record files.
//!
//! A framed file carries a one-line header in front of the payload:
//!
//! ```text
//! histpc-frame v1 <payload-bytes> <fnv64-hex>
//! histpc-record v1
//! app poisson
//! ...
//! ```
//!
//! The header states the exact payload length in bytes and the FNV-1a
//! 64-bit checksum of the payload, so a torn or bit-flipped write is
//! detected on read instead of surfacing as a confusing parse error (or
//! worse, parsing to a silently wrong record). Files written before
//! framing existed (the v0 loose-file layout) have no header; they decode
//! as [`Decoded::Legacy`] and stay loadable until `histpc store migrate`
//! rewrites them.

use std::fmt;

/// First token of a frame header line.
pub const FRAME_MAGIC: &str = "histpc-frame";

/// Full header prefix for the current frame version.
pub const FRAME_HEADER_V1: &str = "histpc-frame v1";

/// FNV-1a 64-bit hash (same function the consultant uses for search
/// checkpoint digests; reimplemented here so `histpc-history` stays
/// dependency-light).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a framed file failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header line starts with the frame magic but is not a valid
    /// `histpc-frame v1 <len> <fnv>` header (usually a torn write that
    /// cut inside the header itself).
    BadHeader {
        /// What the header line looked like.
        header: String,
    },
    /// The payload is shorter (or longer) than the header promised.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum the header recorded.
        expected: u64,
        /// Checksum of the bytes on disk.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadHeader { header } => {
                write!(f, "damaged frame header {header:?}")
            }
            FrameError::Truncated { expected, actual } => write!(
                f,
                "frame truncated: header promises {expected} payload bytes, found {actual}"
            ),
            FrameError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: header says {expected:016x}, payload hashes to {actual:016x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {}

/// Result of decoding a store file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A `histpc-frame v1` file whose length and checksum verified; the
    /// payload is the original text.
    Framed(String),
    /// A pre-framing (v0) file: no header, the whole file is the
    /// payload. Loadable, but carries no integrity metadata — `fsck`
    /// flags these and `migrate` upgrades them.
    Legacy(String),
}

impl Decoded {
    /// The payload text, however it was stored.
    pub fn payload(&self) -> &str {
        match self {
            Decoded::Framed(p) | Decoded::Legacy(p) => p,
        }
    }

    /// True if the file carried (and passed) a checksum frame.
    pub fn is_framed(&self) -> bool {
        matches!(self, Decoded::Framed(_))
    }
}

/// Wraps `payload` in a `histpc-frame v1` header.
pub fn encode(payload: &str) -> String {
    format!(
        "{FRAME_HEADER_V1} {} {:016x}\n{payload}",
        payload.len(),
        fnv64(payload.as_bytes())
    )
}

/// Decodes a store file: verifies the frame when one is present, passes
/// legacy files through untouched. A file whose first line starts with
/// the frame magic but fails verification is an integrity error — never
/// silently treated as legacy text.
pub fn decode(text: &str) -> Result<Decoded, FrameError> {
    if !text.starts_with(FRAME_MAGIC) {
        return Ok(Decoded::Legacy(text.to_string()));
    }
    let (header, payload) = match text.split_once('\n') {
        Some((h, p)) => (h, p),
        // Torn so early the header line itself has no newline.
        None => (text, ""),
    };
    let bad = || FrameError::BadHeader {
        header: header.to_string(),
    };
    let rest = header.strip_prefix(FRAME_HEADER_V1).ok_or_else(bad)?;
    let mut words = rest.split_whitespace();
    let expected_len: usize = words.next().and_then(|w| w.parse().ok()).ok_or_else(bad)?;
    let expected_fnv_word = words.next().ok_or_else(bad)?;
    if words.next().is_some() || expected_fnv_word.len() != 16 {
        return Err(bad());
    }
    let expected_fnv = u64::from_str_radix(expected_fnv_word, 16).map_err(|_| bad())?;
    if payload.len() != expected_len {
        return Err(FrameError::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual_fnv = fnv64(payload.as_bytes());
    if actual_fnv != expected_fnv {
        return Err(FrameError::ChecksumMismatch {
            expected: expected_fnv,
            actual: actual_fnv,
        });
    }
    Ok(Decoded::Framed(payload.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let payload = "histpc-record v1\napp poisson\nlabel a1\n";
        let framed = encode(payload);
        assert!(framed.starts_with("histpc-frame v1 "));
        assert_eq!(decode(&framed).unwrap(), Decoded::Framed(payload.into()));
        assert_eq!(decode(&framed).unwrap().payload(), payload);
    }

    #[test]
    fn legacy_text_passes_through() {
        let text = "histpc-record v1\napp poisson\n";
        let d = decode(text).unwrap();
        assert!(!d.is_framed());
        assert_eq!(d.payload(), text);
    }

    #[test]
    fn empty_payload_frames() {
        let framed = encode("");
        assert_eq!(decode(&framed).unwrap(), Decoded::Framed(String::new()));
    }

    #[test]
    fn truncation_is_detected_at_every_offset() {
        let framed = encode("histpc-record v1\napp poisson\nlabel a1\n");
        for cut in 0..framed.len() {
            let torn = &framed[..cut];
            if !torn.is_empty() && torn.starts_with(FRAME_MAGIC) {
                assert!(decode(torn).is_err(), "cut at byte {cut} decoded: {torn:?}");
            }
        }
        // The untorn frame still decodes.
        assert!(decode(&framed).is_ok());
    }

    #[test]
    fn flipped_byte_is_a_checksum_mismatch() {
        let payload = "histpc-record v1\napp poisson\n";
        let mut framed = encode(payload).into_bytes();
        let n = framed.len();
        framed[n - 2] ^= 0x01;
        let text = String::from_utf8(framed).unwrap();
        assert!(matches!(
            decode(&text),
            Err(FrameError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
