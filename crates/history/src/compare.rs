//! Quantitative comparison of two executions.
//!
//! The paper situates itself in "an ongoing research effort in which we
//! are designing and developing an infrastructure for storing, naming,
//! and querying multi-execution performance data", with "techniques for
//! quantitatively and automatically comparing two or more executions"
//! (§6, citing the authors' Experiment Management work). This module
//! implements that comparison over stored [`ExecutionRecord`]s: the
//! structural difference (resources added/removed between runs) and the
//! performance difference (per hypothesis/focus outcome and magnitude),
//! optionally through a resource mapping so that renamed resources
//! compare as equivalent.
//!
//! This is what closes the tuning loop: after a code change, "did the
//! bottleneck I attacked actually go away, and did anything new appear?"

use crate::mapping::MappingSet;
use crate::record::ExecutionRecord;
use histpc_consultant::Outcome;
use histpc_resources::{Focus, ResourceName};

/// How one hypothesis/focus pair changed between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PairDiff {
    /// Hypothesis name.
    pub hypothesis: String,
    /// Focus, in the *second* run's names.
    pub focus: Focus,
    /// Outcome in the first run (if tested).
    pub outcome_a: Option<Outcome>,
    /// Outcome in the second run (if tested).
    pub outcome_b: Option<Outcome>,
    /// Measured fraction in the first run; `None` when the pair was
    /// never concluded there. A missing side is *not* zero — fabricating
    /// `0.0` would manufacture a maximal delta that dominates rankings.
    pub value_a: Option<f64>,
    /// Measured fraction in the second run (`None` when not concluded).
    pub value_b: Option<f64>,
}

impl PairDiff {
    /// The change in measured fraction (b - a); `None` unless the pair
    /// was measured in both runs.
    pub fn delta(&self) -> Option<f64> {
        Some(self.value_b? - self.value_a?)
    }
}

/// The comparison of two executions.
#[derive(Debug, Clone, Default)]
pub struct ComparisonReport {
    /// Resources present only in the first run (after mapping).
    pub only_in_a: Vec<ResourceName>,
    /// Resources present only in the second run.
    pub only_in_b: Vec<ResourceName>,
    /// Bottlenecks of run A that are no longer bottlenecks in run B
    /// (fixed by the change, or below threshold now).
    pub resolved: Vec<PairDiff>,
    /// Bottlenecks of run B that were not bottlenecks in run A.
    pub introduced: Vec<PairDiff>,
    /// Pairs that are bottlenecks in both runs, with their magnitudes.
    pub persisting: Vec<PairDiff>,
    /// Number of pairs concluded (true or false) in both runs.
    pub common_tested: usize,
}

impl ComparisonReport {
    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Execution comparison: {} common tested pairs\n",
            self.common_tested
        ));
        out.push_str(&format!(
            "structure: {} resources only in A, {} only in B\n",
            self.only_in_a.len(),
            self.only_in_b.len()
        ));
        // An untested side renders as "--", not as a fabricated 0%.
        let pct = |v: Option<f64>| match v {
            Some(v) => format!("{:.1}%", v * 100.0),
            None => "--".to_string(),
        };
        out.push_str(&format!(
            "\nresolved bottlenecks ({}):\n",
            self.resolved.len()
        ));
        for d in &self.resolved {
            out.push_str(&format!(
                "  {:>7} -> {:>6}  {}  {}\n",
                pct(d.value_a),
                pct(d.value_b),
                d.hypothesis,
                d.focus
            ));
        }
        out.push_str(&format!(
            "\nintroduced bottlenecks ({}):\n",
            self.introduced.len()
        ));
        for d in &self.introduced {
            out.push_str(&format!(
                "  {:>7} -> {:>6}  {}  {}\n",
                pct(d.value_a),
                pct(d.value_b),
                d.hypothesis,
                d.focus
            ));
        }
        out.push_str(&format!(
            "\npersisting bottlenecks ({}):\n",
            self.persisting.len()
        ));
        for d in self.persisting.iter().take(20) {
            let delta = match d.delta() {
                Some(dv) => format!(" ({:+.1}%)", dv * 100.0),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {:>7} -> {:>6}{}  {}  {}\n",
                pct(d.value_a),
                pct(d.value_b),
                delta,
                d.hypothesis,
                d.focus
            ));
        }
        out
    }

    /// True when the second run got strictly better: something resolved,
    /// nothing introduced.
    pub fn is_improvement(&self) -> bool {
        !self.resolved.is_empty() && self.introduced.is_empty()
    }
}

/// Compares two executions. `mapping` (if given) translates run A's
/// resource names into run B's before matching; pass
/// [`MappingSet::suggest`]'s output for automatic cross-version
/// comparison.
pub fn compare(
    a: &ExecutionRecord,
    b: &ExecutionRecord,
    mapping: Option<&MappingSet>,
) -> ComparisonReport {
    let identity = MappingSet::new();
    let map = mapping.unwrap_or(&identity);

    // Structural diff (on mapped names).
    let a_mapped: Vec<ResourceName> = a.resources.iter().map(|r| map.apply_to_name(r)).collect();
    let only_in_a = a_mapped
        .iter()
        .filter(|r| !b.resources.contains(r))
        .cloned()
        .collect();
    let only_in_b = b
        .resources
        .iter()
        .filter(|r| !a_mapped.contains(r))
        .cloned()
        .collect();

    // Performance diff over concluded pairs.
    let concluded =
        |o: &histpc_consultant::NodeOutcome| matches!(o.outcome, Outcome::True | Outcome::False);
    let mut report = ComparisonReport {
        only_in_a,
        only_in_b,
        ..ComparisonReport::default()
    };
    for oa in a.outcomes.iter().filter(|o| concluded(o)) {
        let focus_b = map.apply_to_focus(&oa.focus);
        let ob = b
            .outcomes
            .iter()
            .find(|o| o.hypothesis == oa.hypothesis && o.focus == focus_b && concluded(o));
        let diff = PairDiff {
            hypothesis: oa.hypothesis.clone(),
            focus: focus_b,
            outcome_a: Some(oa.outcome),
            outcome_b: ob.map(|o| o.outcome),
            value_a: Some(oa.last_value),
            value_b: ob.map(|o| o.last_value),
        };
        if ob.is_some() {
            report.common_tested += 1;
        }
        match (oa.outcome, ob.map(|o| o.outcome)) {
            (Outcome::True, Some(Outcome::True)) => report.persisting.push(diff),
            // A bottleneck that is now false — or was not even worth
            // testing (its parent stopped being a bottleneck) — counts
            // as resolved.
            (Outcome::True, Some(Outcome::False) | None) => report.resolved.push(diff),
            _ => {}
        }
    }
    for ob in b.outcomes.iter().filter(|o| concluded(o)) {
        if ob.outcome != Outcome::True {
            continue;
        }
        let known_in_a = a.outcomes.iter().any(|oa| {
            concluded(oa)
                && oa.hypothesis == ob.hypothesis
                && map.apply_to_focus(&oa.focus) == ob.focus
                && oa.outcome == Outcome::True
        });
        let tested_false_in_a = a.outcomes.iter().any(|oa| {
            concluded(oa)
                && oa.hypothesis == ob.hypothesis
                && map.apply_to_focus(&oa.focus) == ob.focus
                && oa.outcome == Outcome::False
        });
        if !known_in_a {
            let value_a = a
                .outcomes
                .iter()
                .find(|oa| {
                    concluded(oa)
                        && oa.hypothesis == ob.hypothesis
                        && map.apply_to_focus(&oa.focus) == ob.focus
                })
                .map(|oa| oa.last_value);
            report.introduced.push(PairDiff {
                hypothesis: ob.hypothesis.clone(),
                focus: ob.focus.clone(),
                outcome_a: tested_false_in_a.then_some(Outcome::False),
                outcome_b: Some(ob.outcome),
                value_a,
                value_b: Some(ob.last_value),
            });
        }
    }
    // Largest changes first. Only true pairs — measured on both sides —
    // carry a delta; a missing side ranks last instead of fabricating a
    // maximal change.
    let rank = |d: &PairDiff| d.delta().map(f64::abs).unwrap_or(-1.0);
    report
        .persisting
        .sort_by(|x, y| rank(y).total_cmp(&rank(x)));
    report.resolved.sort_by(|x, y| {
        y.value_a
            .unwrap_or(-1.0)
            .total_cmp(&x.value_a.unwrap_or(-1.0))
    });
    report.introduced.sort_by(|x, y| {
        y.value_b
            .unwrap_or(-1.0)
            .total_cmp(&x.value_b.unwrap_or(-1.0))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_consultant::NodeOutcome;
    use histpc_resources::ResourceSpace;
    use histpc_sim::SimTime;

    fn space(extra: &[&str]) -> ResourceSpace {
        let mut s = ResourceSpace::new();
        for r in ["/Code/a.c/f", "/Code/a.c/g", "/Process/p1", "/Machine/n1"] {
            s.add_resource(&ResourceName::parse(r).unwrap()).unwrap();
        }
        for r in extra {
            s.add_resource(&ResourceName::parse(r).unwrap()).unwrap();
        }
        s
    }

    fn outcome(
        s: &ResourceSpace,
        hyp: &str,
        sel: Option<&str>,
        out: Outcome,
        v: f64,
    ) -> NodeOutcome {
        let mut f = s.whole_program();
        if let Some(sel) = sel {
            f = f.with_selection(ResourceName::parse(sel).unwrap());
        }
        NodeOutcome {
            hypothesis: hyp.into(),
            focus: f,
            outcome: out,
            first_true_at: None,
            concluded_at: Some(SimTime::from_secs(1)),
            last_value: v,
            samples: 3,
        }
    }

    fn record(s: &ResourceSpace, version: &str, outcomes: Vec<NodeOutcome>) -> ExecutionRecord {
        ExecutionRecord {
            app_name: "app".into(),
            app_version: version.into(),
            label: version.into(),
            resources: s.hierarchies().iter().flat_map(|h| h.all_names()).collect(),
            outcomes,
            thresholds_used: vec![],
            end_time: SimTime::from_secs(10),
            pairs_tested: 0,
            unreachable: vec![],
            saturated: vec![],
        }
    }

    #[test]
    fn resolved_introduced_persisting_classification() {
        let s = space(&[]);
        let a = record(
            &s,
            "1",
            vec![
                outcome(&s, "CPUbound", Some("/Code/a.c/f"), Outcome::True, 0.5),
                outcome(&s, "CPUbound", Some("/Code/a.c/g"), Outcome::True, 0.3),
                outcome(&s, "ExcessiveSyncWaitingTime", None, Outcome::False, 0.05),
            ],
        );
        let b = record(
            &s,
            "2",
            vec![
                // f fixed, g persists (worse), sync newly appeared.
                outcome(&s, "CPUbound", Some("/Code/a.c/f"), Outcome::False, 0.1),
                outcome(&s, "CPUbound", Some("/Code/a.c/g"), Outcome::True, 0.45),
                outcome(&s, "ExcessiveSyncWaitingTime", None, Outcome::True, 0.4),
            ],
        );
        let cmp = compare(&a, &b, None);
        assert_eq!(cmp.resolved.len(), 1);
        assert_eq!(cmp.resolved[0].value_a, Some(0.5));
        assert_eq!(cmp.introduced.len(), 1);
        assert_eq!(cmp.introduced[0].hypothesis, "ExcessiveSyncWaitingTime");
        assert_eq!(cmp.introduced[0].outcome_a, Some(Outcome::False));
        assert_eq!(cmp.introduced[0].value_a, Some(0.05));
        assert_eq!(cmp.persisting.len(), 1);
        assert!((cmp.persisting[0].delta().unwrap() - 0.15).abs() < 1e-9);
        assert_eq!(cmp.common_tested, 3);
        assert!(!cmp.is_improvement()); // something was introduced
    }

    #[test]
    fn untested_in_b_counts_as_resolved() {
        let s = space(&[]);
        let a = record(
            &s,
            "1",
            vec![outcome(
                &s,
                "CPUbound",
                Some("/Code/a.c/f"),
                Outcome::True,
                0.5,
            )],
        );
        let b = record(&s, "2", vec![]);
        let cmp = compare(&a, &b, None);
        assert_eq!(cmp.resolved.len(), 1);
        assert_eq!(cmp.resolved[0].outcome_b, None);
        // The missing side is absent, not a fabricated zero.
        assert_eq!(cmp.resolved[0].value_b, None);
        assert_eq!(cmp.resolved[0].delta(), None);
        assert!(cmp.is_improvement());
    }

    #[test]
    fn missing_side_does_not_dominate_delta_ranking() {
        // Regression: a pair untested in run B used to be fabricated as
        // value_b = 0.0, whose huge |delta| outranked every genuinely
        // measured change. Pairs without both measurements must rank last.
        let s = space(&[]);
        let a = record(
            &s,
            "1",
            vec![
                outcome(&s, "CPUbound", Some("/Code/a.c/f"), Outcome::True, 0.9),
                outcome(&s, "CPUbound", Some("/Code/a.c/g"), Outcome::True, 0.3),
            ],
        );
        let b = record(
            &s,
            "2",
            vec![outcome(
                &s,
                "CPUbound",
                Some("/Code/a.c/g"),
                Outcome::True,
                0.35,
            )],
        );
        let cmp = compare(&a, &b, None);
        // f (missing in B) resolves; only g truly persists with a small
        // genuine delta — not a fabricated -0.9.
        assert_eq!(cmp.persisting.len(), 1);
        assert!((cmp.persisting[0].delta().unwrap() - 0.05).abs() < 1e-9);
        assert_eq!(cmp.resolved.len(), 1);
        assert_eq!(cmp.resolved[0].value_b, None);
        // Render shows the missing side as "--".
        let text = cmp.render();
        assert!(text.contains("--"), "{text}");
    }

    #[test]
    fn structural_diff_detects_renames_without_mapping() {
        let s1 = space(&["/Code/old.c/x"]);
        let s2 = space(&["/Code/new.c/x"]);
        let a = record(&s1, "1", vec![]);
        let b = record(&s2, "2", vec![]);
        let cmp = compare(&a, &b, None);
        assert!(cmp
            .only_in_a
            .contains(&ResourceName::parse("/Code/old.c").unwrap()));
        assert!(cmp
            .only_in_b
            .contains(&ResourceName::parse("/Code/new.c").unwrap()));
    }

    #[test]
    fn mapping_bridges_renames() {
        let s1 = space(&["/Code/old.c/x"]);
        let s2 = space(&["/Code/new.c/x"]);
        let a = record(
            &s1,
            "1",
            vec![outcome(
                &s1,
                "CPUbound",
                Some("/Code/old.c/x"),
                Outcome::True,
                0.4,
            )],
        );
        let b = record(
            &s2,
            "2",
            vec![outcome(
                &s2,
                "CPUbound",
                Some("/Code/new.c/x"),
                Outcome::True,
                0.35,
            )],
        );
        let mut m = MappingSet::new();
        m.add(
            ResourceName::parse("/Code/old.c").unwrap(),
            ResourceName::parse("/Code/new.c").unwrap(),
        );
        let cmp = compare(&a, &b, Some(&m));
        assert_eq!(cmp.persisting.len(), 1);
        assert!(cmp.only_in_a.is_empty());
        assert!(cmp.resolved.is_empty() && cmp.introduced.is_empty());
    }

    #[test]
    fn render_contains_sections() {
        let s = space(&[]);
        let a = record(
            &s,
            "1",
            vec![outcome(&s, "CPUbound", None, Outcome::True, 0.4)],
        );
        let b = record(
            &s,
            "2",
            vec![outcome(&s, "CPUbound", None, Outcome::True, 0.3)],
        );
        let text = compare(&a, &b, None).render();
        assert!(text.contains("resolved bottlenecks (0)"));
        assert!(text.contains("persisting bottlenecks (1)"));
        assert!(text.contains("-10.0%"));
    }
}
