//! A crash-consistent, directory-backed store of execution records.
//!
//! This is the "available store of performance data gathered from one or
//! more previous program runs" of the paper's §6, organized as
//! `<root>/<application>/<label>.record` text files — but grown from a
//! scratch directory into a small crash-safe database:
//!
//! * every record is wrapped in a checksum [`frame`](crate::frame);
//! * every mutation is journaled (intent before write, `ok` after) in
//!   `<root>/JOURNAL`, so a kill at any byte offset is rolled forward or
//!   back on the next [`ExecutionStore::open`];
//! * a versioned `<root>/MANIFEST` carries the format generation and an
//!   index of every file ([`manifest`](crate::manifest));
//! * writers serialize on an advisory `<root>/LOCK`
//!   ([`lock`](crate::lock)), so two concurrent sessions cannot
//!   interleave a write protocol;
//! * a torn record is *salvaged* — the parseable prefix is kept as a
//!   (framed) record — and only quarantined to `<label>.record.corrupt`
//!   when nothing usable remains.
//!
//! Stores written before this layout existed (v0: loose files, no
//! control files) stay loadable; [`ExecutionStore::migrate`] upgrades
//! them in place. [`crate::fsck`] checks all of the above read-only.

use crate::format::{parse_record, write_record, FormatError};
use crate::frame;
use crate::journal::{Journal, JournalEntry};
use crate::lock::{self, LockError, StoreLock};
use crate::manifest::{self, Manifest, ManifestState};
use crate::record::ExecutionRecord;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Reset (truncate) the journal once it grows past this many bytes; all
/// entries before the trailing `ok` are settled history.
const JOURNAL_RESET_LEN: u64 = 64 * 1024;

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A record file failed to parse.
    Format(FormatError),
    /// A file failed its integrity frame (checksum mismatch, truncation,
    /// damaged header).
    Integrity {
        /// Which file, as `<app>/<label>.<ext>`.
        what: String,
        /// What the frame check found.
        reason: String,
    },
    /// Another live session holds the store lock.
    Locked {
        /// The holder's pid (0 if unknown).
        pid: u32,
    },
    /// No such record.
    NotFound(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(e) => write!(f, "store format error: {e}"),
            StoreError::Integrity { what, reason } => {
                write!(f, "store integrity error in {what}: {reason}")
            }
            StoreError::Locked { pid } => write!(f, "store is locked by live process {pid}"),
            StoreError::NotFound(what) => write!(f, "record not found: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

impl From<LockError> for StoreError {
    fn from(e: LockError) -> Self {
        match e {
            LockError::Held { pid } => StoreError::Locked { pid },
            LockError::Io(e) => StoreError::Io(e),
        }
    }
}

/// A multi-execution performance data store rooted at a directory.
#[derive(Debug, Clone)]
pub struct ExecutionStore {
    root: PathBuf,
}

/// `path` with `.tmp` appended to its file name.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// `path` with `.corrupt` appended to its file name.
fn corrupt_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".corrupt");
    path.with_file_name(name)
}

/// Writes `text` to `path` via a `.tmp` sibling + rename, so the target
/// is only ever the old contents or the new.
fn atomic_write_raw(path: &Path, text: &str) -> Result<(), StoreError> {
    let tmp = tmp_sibling(path);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Removes a data file and any `.tmp` / `.corrupt` siblings it left.
fn remove_with_siblings(path: &Path) -> Result<(), StoreError> {
    for p in [path.to_path_buf(), tmp_sibling(path), corrupt_sibling(path)] {
        match std::fs::remove_file(&p) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// The payload candidate of a possibly-torn file: the frame payload when
/// the frame verifies, otherwise everything after a (damaged) frame
/// header, otherwise the raw text.
fn payload_candidate(text: &str) -> String {
    match frame::decode(text) {
        Ok(d) => d.payload().to_string(),
        Err(_) => match text.split_once('\n') {
            Some((_, rest)) => rest.to_string(),
            None => String::new(),
        },
    }
}

/// Recovers the longest parseable prefix of a torn record payload:
/// repeatedly drops everything from the first failing line and re-parses.
/// Returns the record plus (kept, total) line counts, or `None` when not
/// even the header + `app` line survive. A missing `label` line is
/// repaired from the file stem.
fn salvage_record_text(label: &str, payload: &str) -> Option<(ExecutionRecord, usize, usize)> {
    let mut lines: Vec<&str> = payload.lines().collect();
    let total = lines.len();
    if !payload.ends_with('\n') {
        // The final line was torn mid-write; it cannot be trusted even
        // if it happens to parse.
        lines.pop();
    }
    loop {
        if lines.len() < 2 {
            return None;
        }
        let candidate = format!("{}\n", lines.join("\n"));
        match parse_record(&candidate) {
            Ok(mut rec) => {
                if rec.label.is_empty() {
                    rec.label = label.to_string();
                }
                return Some((rec, lines.len(), total));
            }
            Err(e) => {
                // line 0 = structural (missing app), line 1 = bad
                // header: nothing salvageable before those.
                if e.line < 2 || e.line > lines.len() {
                    return None;
                }
                lines.truncate(e.line - 1);
            }
        }
    }
}

/// All stray `.tmp` files in the store (app dirs plus `MANIFEST.tmp`).
fn stray_tmps(root: &Path) -> Result<Vec<PathBuf>, StoreError> {
    let mut out = Vec::new();
    let mtmp = root.join(format!("{}.tmp", manifest::MANIFEST_FILE));
    if mtmp.exists() {
        out.push(mtmp);
    }
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        for file in std::fs::read_dir(entry.path())? {
            let file = file?;
            if file.file_name().to_string_lossy().ends_with(".tmp") {
                out.push(file.path());
            }
        }
    }
    out.sort();
    Ok(out)
}

impl ExecutionStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// Opening is where crash recovery happens: if the previous session
    /// died mid-mutation (uncommitted journal intent, torn journal,
    /// stale lock, damaged manifest), the store rolls the interrupted
    /// mutation forward or back, salvages or quarantines any torn
    /// record, removes unfinished temp files, rebuilds the manifest,
    /// and resets the journal — so every `open` returns a consistent
    /// store. A store currently locked by a *live* session is left
    /// untouched (its in-flight mutation is not ours to settle).
    pub fn open(root: impl AsRef<Path>) -> Result<ExecutionStore, StoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let store = ExecutionStore { root };
        store.maybe_recover()?;
        Ok(store)
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn record_path(&self, app: &str, label: &str) -> PathBuf {
        self.root.join(app).join(format!("{label}.record"))
    }

    fn rel_path(app: &str, label: &str, ext: &str) -> String {
        format!("{app}/{label}.{ext}")
    }

    /// The manifest generation (committed-mutation counter), or `None`
    /// for a v0 store that has no manifest yet.
    pub fn generation(&self) -> Result<Option<u64>, StoreError> {
        Ok(match Manifest::load(&self.root)? {
            ManifestState::Loaded(m) => Some(m.generation),
            _ => None,
        })
    }

    /// Saves a record (overwriting an existing one with the same
    /// application and label). The write is checksum-framed, journaled,
    /// and atomic.
    pub fn save(&self, rec: &ExecutionRecord) -> Result<(), StoreError> {
        self.put_file(
            &rec.app_name,
            &rec.label,
            "record",
            &write_record(rec),
            true,
        )
    }

    /// Saves a named auxiliary artifact next to a record — e.g. the
    /// Search History Graph rendering (`ext = "shg"`) or a directive
    /// file harvested from the run. Artifacts stay plain text (no frame
    /// header, so they remain directly greppable/diffable); their
    /// checksum lives in the manifest instead. The write is journaled
    /// and atomic.
    pub fn save_artifact(
        &self,
        app: &str,
        label: &str,
        ext: &str,
        text: &str,
    ) -> Result<(), StoreError> {
        self.put_file(app, label, ext, text, false)
    }

    /// The journaled write protocol: lock → intent → tmp+rename →
    /// manifest → ok. A crash between any two steps is recovered by the
    /// next `open`.
    fn put_file(
        &self,
        app: &str,
        label: &str,
        ext: &str,
        payload: &str,
        framed: bool,
    ) -> Result<(), StoreError> {
        let dir = self.root.join(app);
        std::fs::create_dir_all(&dir)?;
        let payload_fnv = frame::fnv64(payload.as_bytes());
        let _lock = StoreLock::acquire(&self.root)?;
        let journal = Journal::at(&self.root);
        journal.append(&JournalEntry::Put {
            fnv: payload_fnv,
            ext: ext.to_string(),
            app: app.to_string(),
            label: label.to_string(),
        })?;
        let target = dir.join(format!("{label}.{ext}"));
        let disk_text = if framed {
            frame::encode(payload)
        } else {
            payload.to_string()
        };
        atomic_write_raw(&target, &disk_text)?;
        let mut m = match Manifest::load(&self.root)? {
            ManifestState::Loaded(m) => m,
            // First journaled write into a v0 (or manifest-damaged)
            // store: index everything already on disk too.
            _ => {
                let mut m = Manifest::default();
                m.rebuild_index(&self.root)?;
                m
            }
        };
        m.upsert(&Self::rel_path(app, label, ext), payload_fnv);
        m.generation += 1;
        m.save(&self.root)?;
        journal.append(&JournalEntry::Ok)?;
        if std::fs::metadata(journal.path())?.len() > JOURNAL_RESET_LEN {
            journal.reset()?;
        }
        Ok(())
    }

    /// Loads the record for (application, label). The frame checksum is
    /// verified first; legacy (v0, unframed) records still load.
    pub fn load(&self, app: &str, label: &str) -> Result<ExecutionRecord, StoreError> {
        let path = self.record_path(app, label);
        if !path.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}")));
        }
        let text = std::fs::read_to_string(&path)?;
        let decoded = frame::decode(&text).map_err(|e| StoreError::Integrity {
            what: Self::rel_path(app, label, "record"),
            reason: e.to_string(),
        })?;
        Ok(parse_record(decoded.payload())?)
    }

    /// The FNV-64 payload checksum of a stored record, as indexed by
    /// the manifest — the cheap per-record identity the corpus fact
    /// cache keys on. Reads the manifest entry when one exists (O(1)
    /// file reads for the whole store); falls back to hashing the file
    /// payload for v0 stores or manifest misses, so the checksum always
    /// matches what a manifest rebuild would record.
    pub fn record_checksum(&self, app: &str, label: &str) -> Result<u64, StoreError> {
        let rel = Self::rel_path(app, label, "record");
        if let ManifestState::Loaded(m) = Manifest::load(&self.root)? {
            if let Some(fnv) = m.lookup(&rel) {
                return Ok(fnv);
            }
        }
        let path = self.record_path(app, label);
        if !path.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}")));
        }
        let text = std::fs::read_to_string(&path)?;
        let decoded = frame::decode(&text).map_err(|e| StoreError::Integrity {
            what: rel,
            reason: e.to_string(),
        })?;
        Ok(frame::fnv64(decoded.payload().as_bytes()))
    }

    /// Loads an auxiliary artifact saved with
    /// [`ExecutionStore::save_artifact`]. Returns the payload text
    /// (transparently unwrapping a frame if one is present).
    pub fn load_artifact(&self, app: &str, label: &str, ext: &str) -> Result<String, StoreError> {
        let path = self.root.join(app).join(format!("{label}.{ext}"));
        if !path.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}.{ext}")));
        }
        let text = std::fs::read_to_string(path)?;
        let decoded = frame::decode(&text).map_err(|e| StoreError::Integrity {
            what: Self::rel_path(app, label, ext),
            reason: e.to_string(),
        })?;
        Ok(decoded.payload().to_string())
    }

    /// The labels of all stored runs of an application, sorted. Stale
    /// `.tmp` leftovers and `.corrupt` quarantine files never appear —
    /// a crashed run cannot make phantom records.
    pub fn labels(&self, app: &str) -> Result<Vec<String>, StoreError> {
        let dir = self.root.join(app);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if name.ends_with(".tmp") || name.ends_with(".corrupt") {
                continue;
            }
            if let Some(label) = name.strip_suffix(".record") {
                out.push(label.to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The names of all applications with stored runs, sorted. Only
    /// directories holding at least one actual `.record` file count —
    /// a directory left with nothing but quarantined or temp files is
    /// not an application.
    pub fn applications(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let app = entry.file_name().to_string_lossy().to_string();
            if !self.labels(&app)?.is_empty() {
                out.push(app);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored run of an application, sorted by label.
    /// Damaged records are salvaged or quarantined (see
    /// [`ExecutionStore::load_all_with_warnings`]); their warnings are
    /// discarded here.
    pub fn load_all(&self, app: &str) -> Result<Vec<ExecutionRecord>, StoreError> {
        Ok(self.load_all_with_warnings(app)?.0)
    }

    /// Loads every stored run of an application, sorted by label,
    /// degrading gracefully on damage instead of failing the whole load:
    ///
    /// * a torn or checksum-failing record whose prefix still parses is
    ///   **salvaged** — the parseable prefix is re-saved (framed,
    ///   journaled) and returned like any other record;
    /// * a record with no usable prefix is **quarantined** to
    ///   `<label>.record.corrupt` and dropped from the store's index.
    ///
    /// Either case adds a warning. I/O errors still fail the load.
    pub fn load_all_with_warnings(
        &self,
        app: &str,
    ) -> Result<(Vec<ExecutionRecord>, Vec<String>), StoreError> {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        for label in self.labels(app)? {
            let reason = match self.load(app, &label) {
                Ok(rec) => {
                    records.push(rec);
                    continue;
                }
                Err(StoreError::Format(e)) => e.to_string(),
                Err(StoreError::Integrity { reason, .. }) => reason,
                Err(e) => return Err(e),
            };
            let path = self.record_path(app, &label);
            let text = std::fs::read_to_string(&path)?;
            match salvage_record_text(&label, &payload_candidate(&text)) {
                Some((rec, kept, total)) => {
                    self.put_file(app, &label, "record", &write_record(&rec), true)?;
                    warnings.push(format!(
                        "salvaged damaged record {app}/{label}.record ({reason}); \
                         kept {kept} of {total} lines"
                    ));
                    records.push(rec);
                }
                None => {
                    self.quarantine(app, &label)?;
                    warnings.push(format!(
                        "quarantined corrupt record {app}/{label}.record ({reason}); \
                         moved to {label}.record.corrupt"
                    ));
                }
            }
        }
        Ok((records, warnings))
    }

    /// Moves an unsalvageable record aside to `<label>.record.corrupt`
    /// and drops it from the manifest.
    fn quarantine(&self, app: &str, label: &str) -> Result<(), StoreError> {
        let path = self.record_path(app, label);
        let _lock = StoreLock::acquire(&self.root)?;
        std::fs::rename(&path, corrupt_sibling(&path))?;
        if let ManifestState::Loaded(mut m) = Manifest::load(&self.root)? {
            m.remove(&Self::rel_path(app, label, "record"));
            m.generation += 1;
            m.save(&self.root)?;
        }
        Ok(())
    }

    /// Deletes one record, along with any `.tmp` / `.corrupt` siblings
    /// it left behind. Returns [`StoreError::NotFound`] — never an I/O
    /// error — when the record (or its whole application directory)
    /// does not exist.
    pub fn delete(&self, app: &str, label: &str) -> Result<(), StoreError> {
        let target = self.record_path(app, label);
        if !target.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}")));
        }
        let _lock = StoreLock::acquire(&self.root)?;
        let journal = Journal::at(&self.root);
        journal.append(&JournalEntry::Del {
            ext: "record".to_string(),
            app: app.to_string(),
            label: label.to_string(),
        })?;
        remove_with_siblings(&target)?;
        if let ManifestState::Loaded(mut m) = Manifest::load(&self.root)? {
            m.remove(&Self::rel_path(app, label, "record"));
            m.generation += 1;
            m.save(&self.root)?;
        }
        journal.append(&JournalEntry::Ok)?;
        Ok(())
    }

    /// Deletes one auxiliary artifact (journaled, manifest-maintained).
    /// Returns `Ok(false)` — not an error — when no such artifact
    /// exists, so callers can unconditionally supersede e.g. a stale
    /// crash checkpoint after a completed run.
    pub fn delete_artifact(&self, app: &str, label: &str, ext: &str) -> Result<bool, StoreError> {
        let target = self.root.join(app).join(format!("{label}.{ext}"));
        if !target.exists() {
            return Ok(false);
        }
        let _lock = StoreLock::acquire(&self.root)?;
        let journal = Journal::at(&self.root);
        journal.append(&JournalEntry::Del {
            ext: ext.to_string(),
            app: app.to_string(),
            label: label.to_string(),
        })?;
        std::fs::remove_file(&target)?;
        if let ManifestState::Loaded(mut m) = Manifest::load(&self.root)? {
            m.remove(&Self::rel_path(app, label, ext));
            m.generation += 1;
            m.save(&self.root)?;
        }
        journal.append(&JournalEntry::Ok)?;
        Ok(true)
    }

    /// Abandoned session checkpoints: every `ckpt` artifact with no
    /// matching completed `.record` under the same (application, label),
    /// sorted. A checkpoint is the one artifact that *should* be
    /// superseded — a completed run deletes it — so survivors mark
    /// sessions that crashed and were never resumed to completion.
    pub fn orphaned_checkpoints(&self) -> Result<Vec<(String, String)>, StoreError> {
        Ok(orphaned_checkpoints_at(&self.root)?)
    }
}

/// [`ExecutionStore::orphaned_checkpoints`] as a read-only scan of a
/// store root that has not been opened (opening runs recovery, which
/// mutates): usable from strictly read-only tooling like the linter.
pub fn orphaned_checkpoints_at(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(root) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let app = entry.file_name().to_string_lossy().to_string();
        if app == crate::lease::LEASE_DIR {
            continue;
        }
        for file in std::fs::read_dir(entry.path())? {
            let file = file?;
            let name = file.file_name().to_string_lossy().to_string();
            let Some(label) = name.strip_suffix(".ckpt") else {
                continue;
            };
            if !entry.path().join(format!("{label}.record")).exists() {
                out.push((app.clone(), label.to_string()));
            }
        }
    }
    out.sort();
    Ok(out)
}

impl ExecutionStore {
    // ------------------------------------------------------------------
    // Maintenance operations (the `histpc store` CLI family)
    // ------------------------------------------------------------------

    /// Forces a full recovery pass — replay the journal, clean temp
    /// files, rebuild the manifest — then sweeps every application
    /// through the salvage/quarantine load path. Returns a note for
    /// every action taken. This is `histpc store repair`.
    pub fn repair(&self) -> Result<Vec<String>, StoreError> {
        let mut notes = self.recover_now()?;
        for app in self.applications()? {
            let (_, warnings) = self.load_all_with_warnings(&app)?;
            notes.extend(warnings);
        }
        Ok(notes)
    }

    /// Removes stray temp files, rebuilds the manifest index from disk,
    /// and truncates the journal. This is `histpc store compact`.
    /// Quarantined `.corrupt` files are kept for inspection (delete the
    /// record to drop them).
    pub fn compact(&self) -> Result<Vec<String>, StoreError> {
        let _lock = StoreLock::acquire(&self.root)?;
        let mut notes = Vec::new();
        for p in stray_tmps(&self.root)? {
            std::fs::remove_file(&p)?;
            notes.push(format!("removed stray temp file {}", p.display()));
        }
        let mut m = match Manifest::load(&self.root)? {
            ManifestState::Loaded(m) => m,
            _ => Manifest::default(),
        };
        m.generation += 1;
        m.rebuild_index(&self.root)?;
        m.save(&self.root)?;
        Journal::at(&self.root).reset()?;
        notes.push("rebuilt manifest and reset journal".to_string());
        Ok(notes)
    }

    /// Upgrades a v0 loose-file store in place: wraps every parseable
    /// unframed record in a checksum frame (byte-for-byte payload, so
    /// diffs stay minimal), writes the manifest, and creates the
    /// journal. Returns how many records were framed. Already-framed
    /// files are untouched; unparseable legacy files are left for
    /// [`ExecutionStore::repair`]. This is `histpc store migrate`.
    pub fn migrate(&self) -> Result<usize, StoreError> {
        let _lock = StoreLock::acquire(&self.root)?;
        let mut migrated = 0;
        for (rel, path) in manifest::scan_data_files(&self.root)? {
            if !rel.ends_with(".record") {
                continue;
            }
            let text = std::fs::read_to_string(&path)?;
            if let Ok(frame::Decoded::Legacy(payload)) = frame::decode(&text) {
                if parse_record(&payload).is_ok() {
                    atomic_write_raw(&path, &frame::encode(&payload))?;
                    migrated += 1;
                }
            }
        }
        let mut m = match Manifest::load(&self.root)? {
            ManifestState::Loaded(m) => m,
            _ => Manifest::default(),
        };
        m.generation += 1;
        m.rebuild_index(&self.root)?;
        m.save(&self.root)?;
        Journal::at(&self.root).reset()?;
        Ok(migrated)
    }

    // ------------------------------------------------------------------
    // Fault-injection hooks (the `torn-write` / `partial-journal` plan
    // keywords in `histpc-faults`)
    // ------------------------------------------------------------------

    /// Simulates a crashed writer that tore the record file itself: an
    /// uncommitted `put` intent is left in the journal and the on-disk
    /// record is truncated at `cut` (a fraction of its byte length, as
    /// if the kernel tore the page-out mid-file). The next `open`
    /// must recover — salvaging the parseable prefix or quarantining.
    pub fn inject_torn_write(&self, app: &str, label: &str, cut: f64) -> Result<(), StoreError> {
        let target = self.record_path(app, label);
        if !target.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}")));
        }
        let text = std::fs::read_to_string(&target)?;
        let payload_fnv = frame::fnv64(payload_candidate(&text).as_bytes());
        Journal::at(&self.root).append(&JournalEntry::Put {
            fnv: payload_fnv,
            ext: "record".to_string(),
            app: app.to_string(),
            label: label.to_string(),
        })?;
        let mut cut_at = ((text.len() as f64) * cut.clamp(0.0, 1.0)) as usize;
        cut_at = cut_at.min(text.len().saturating_sub(1));
        while cut_at > 0 && !text.is_char_boundary(cut_at) {
            cut_at -= 1;
        }
        std::fs::write(&target, &text.as_bytes()[..cut_at])?;
        Ok(())
    }

    /// Simulates a crash mid-journal-append: a `put` intent line for
    /// (`app`, `label`) is appended and then cut mid-line at `cut` (a
    /// fraction of the line's length). The next `open` must discard the
    /// torn tail and recover.
    pub fn inject_torn_journal(&self, app: &str, label: &str, cut: f64) -> Result<(), StoreError> {
        let journal = Journal::at(&self.root);
        journal.append(&JournalEntry::Put {
            fnv: 0,
            ext: "record".to_string(),
            app: app.to_string(),
            label: label.to_string(),
        })?;
        let text = std::fs::read_to_string(journal.path())?;
        let body = text.trim_end_matches('\n');
        let last_start = body.rfind('\n').map_or(0, |i| i + 1);
        let last_len = text.len() - last_start;
        let keep_in_line = (((last_len as f64) * cut.clamp(0.0, 1.0)) as usize)
            .clamp(1, last_len.saturating_sub(1));
        let mut keep = last_start + keep_in_line;
        while keep > 0 && !text.is_char_boundary(keep) {
            keep -= 1;
        }
        std::fs::write(journal.path(), &text.as_bytes()[..keep])?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Recovery gate run by `open`: decides cheaply whether the store
    /// is clean, initializes control files for a brand-new store, and
    /// otherwise runs [`ExecutionStore::recover_now`].
    fn maybe_recover(&self) -> Result<(), StoreError> {
        let lock_path = StoreLock::path_in(&self.root);
        let mut stale_lock = false;
        if let Some(pid) = lock::read_holder(&lock_path)? {
            if pid != 0 && lock::pid_alive(pid) {
                // A live session owns the store; any in-flight journal
                // entry is theirs to finish. Reads tolerate.
                return Ok(());
            }
            stale_lock = true;
        }
        let journal = Journal::at(&self.root);
        let manifest_state = Manifest::load(&self.root)?;
        if !journal.exists() && matches!(manifest_state, ManifestState::Missing) && !stale_lock {
            if manifest::scan_data_files(&self.root)?.is_empty() {
                // Brand-new store: start life in the v1 layout.
                Manifest::default().save(&self.root)?;
                journal.reset()?;
            }
            // Otherwise: an untouched v0 loose-file store. Leave it
            // readable as-is; `migrate` upgrades it explicitly.
            return Ok(());
        }
        let st = journal.read()?;
        let unclean = stale_lock
            || st.torn
            || st.uncommitted().is_some()
            || matches!(manifest_state, ManifestState::Damaged(_))
            || matches!(manifest_state, ManifestState::Missing)
            || !journal.exists();
        if unclean {
            self.recover_now()?;
        }
        Ok(())
    }

    /// Unconditional recovery: settle the journal's trailing intent,
    /// drop stray temp files, rebuild the manifest, reset the journal.
    /// Idempotent; every step is safe to repeat after a further crash.
    fn recover_now(&self) -> Result<Vec<String>, StoreError> {
        let _lock = StoreLock::acquire(&self.root)?;
        let mut notes = Vec::new();
        let journal = Journal::at(&self.root);
        let st = journal.read()?;
        if st.torn {
            notes.push("journal: discarded torn trailing entry".to_string());
        }
        match st.uncommitted() {
            Some(JournalEntry::Put {
                fnv,
                ext,
                app,
                label,
            }) => self.settle_put(*fnv, ext, app, label, &mut notes)?,
            Some(JournalEntry::Del { ext, app, label }) => {
                let target = self.root.join(app).join(format!("{label}.{ext}"));
                remove_with_siblings(&target)?;
                notes.push(format!(
                    "rolled forward interrupted delete of {app}/{label}.{ext}"
                ));
            }
            _ => {}
        }
        for p in stray_tmps(&self.root)? {
            std::fs::remove_file(&p)?;
            notes.push(format!("removed stray temp file {}", p.display()));
        }
        let mut m = match Manifest::load(&self.root)? {
            ManifestState::Loaded(m) => m,
            ManifestState::Missing => Manifest::default(),
            ManifestState::Damaged(reason) => {
                notes.push(format!("rebuilt damaged manifest ({reason})"));
                Manifest::default()
            }
        };
        m.generation += 1;
        m.rebuild_index(&self.root)?;
        m.save(&self.root)?;
        journal.reset()?;
        Ok(notes)
    }

    /// Settles an uncommitted `put` intent: roll forward when the new
    /// contents (or a complete temp file) are present and verified, roll
    /// back when the old contents survived, salvage/quarantine a torn
    /// target.
    fn settle_put(
        &self,
        fnv: u64,
        ext: &str,
        app: &str,
        label: &str,
        notes: &mut Vec<String>,
    ) -> Result<(), StoreError> {
        let what = Self::rel_path(app, label, ext);
        let target = self.root.join(app).join(format!("{label}.{ext}"));
        let tmp = tmp_sibling(&target);
        if target.exists() {
            let text = std::fs::read_to_string(&target)?;
            match frame::decode(&text) {
                Ok(d) if frame::fnv64(d.payload().as_bytes()) == fnv => {
                    let _ = std::fs::remove_file(&tmp);
                    notes.push(format!("rolled forward completed write of {what}"));
                    return Ok(());
                }
                Ok(_) => {
                    // The target still holds the previously committed
                    // contents. If the interrupted write got as far as a
                    // complete temp file, finish its rename; otherwise
                    // roll back to the old contents.
                    if self.finish_from_tmp(&tmp, &target, fnv, ext)? {
                        notes.push(format!(
                            "completed interrupted write of {what} from its temp file"
                        ));
                        return Ok(());
                    }
                    let _ = std::fs::remove_file(&tmp);
                    notes.push(format!(
                        "rolled back interrupted write of {what} (previous contents kept)"
                    ));
                    return Ok(());
                }
                Err(e) => {
                    // Torn target. Prefer a complete temp file; failing
                    // that, salvage what parses.
                    if self.finish_from_tmp(&tmp, &target, fnv, ext)? {
                        notes.push(format!(
                            "completed interrupted write of {what} from its temp file"
                        ));
                        return Ok(());
                    }
                    self.salvage_or_quarantine_at(&target, app, label, ext, &e.to_string(), notes)?;
                    return Ok(());
                }
            }
        }
        if self.finish_from_tmp(&tmp, &target, fnv, ext)? {
            notes.push(format!(
                "completed interrupted write of {what} from its temp file"
            ));
            return Ok(());
        }
        let _ = std::fs::remove_file(&tmp);
        notes.push(format!("rolled back interrupted first write of {what}"));
        Ok(())
    }

    /// If `tmp` holds a complete, verified copy of the intended write,
    /// finish the interrupted rename.
    fn finish_from_tmp(
        &self,
        tmp: &Path,
        target: &Path,
        fnv: u64,
        ext: &str,
    ) -> Result<bool, StoreError> {
        if !tmp.exists() {
            return Ok(false);
        }
        let text = std::fs::read_to_string(tmp)?;
        let complete = match frame::decode(&text) {
            Ok(d) if frame::fnv64(d.payload().as_bytes()) == fnv => {
                ext != "record" || parse_record(d.payload()).is_ok()
            }
            _ => false,
        };
        if complete {
            std::fs::rename(tmp, target)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Recovery-time salvage (the caller already holds the store lock,
    /// so this writes directly; the manifest rebuild that follows picks
    /// the result up).
    fn salvage_or_quarantine_at(
        &self,
        target: &Path,
        app: &str,
        label: &str,
        ext: &str,
        reason: &str,
        notes: &mut Vec<String>,
    ) -> Result<(), StoreError> {
        let _ = std::fs::remove_file(tmp_sibling(target));
        let text = std::fs::read_to_string(target)?;
        if ext == "record" {
            if let Some((rec, kept, total)) = salvage_record_text(label, &payload_candidate(&text))
            {
                atomic_write_raw(target, &frame::encode(&write_record(&rec)))?;
                notes.push(format!(
                    "salvaged torn record {app}/{label}.{ext} ({reason}); kept {kept} of {total} lines"
                ));
                return Ok(());
            }
        }
        std::fs::rename(target, corrupt_sibling(target))?;
        notes.push(format!(
            "quarantined torn file {app}/{label}.{ext} ({reason}); moved to {label}.{ext}.corrupt"
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::{Focus, ResourceName, ResourceSpace};
    use histpc_sim::SimTime;

    /// A pid far above any default `pid_max`, so it is never alive.
    const DEAD_PID: u32 = 999_999_999;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(app: &str, label: &str) -> ExecutionRecord {
        let mut space = ResourceSpace::new();
        space
            .add_resource(&ResourceName::parse("/Code/a.c/f").unwrap())
            .unwrap();
        ExecutionRecord {
            app_name: app.into(),
            app_version: "A".into(),
            label: label.into(),
            resources: space
                .hierarchies()
                .iter()
                .flat_map(|h| h.all_names())
                .collect(),
            outcomes: vec![histpc_consultant::NodeOutcome {
                hypothesis: "CPUbound".into(),
                focus: Focus::whole_program(["Code"]),
                outcome: histpc_consultant::Outcome::True,
                first_true_at: Some(SimTime(5)),
                concluded_at: Some(SimTime(5)),
                last_value: 0.5,
                samples: 4,
            }],
            thresholds_used: vec![],
            end_time: SimTime(100),
            pairs_tested: 3,
            unreachable: vec![],
            saturated: vec![],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let store = ExecutionStore::open(tmpdir("roundtrip")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let loaded = store.load("poisson", "a1").unwrap();
        assert_eq!(loaded.label, "a1");
        assert_eq!(loaded.outcomes.len(), 1);
        // The on-disk file is checksum-framed.
        let text = std::fs::read_to_string(store.root().join("poisson").join("a1.record")).unwrap();
        assert!(text.starts_with("histpc-frame v1 "));
    }

    #[test]
    fn open_initializes_v1_control_files() {
        let store = ExecutionStore::open(tmpdir("init")).unwrap();
        assert!(store.root().join(manifest::MANIFEST_FILE).exists());
        assert!(store.root().join(crate::journal::JOURNAL_FILE).exists());
        assert_eq!(store.generation().unwrap(), Some(0));
        store.save(&rec("poisson", "a1")).unwrap();
        assert_eq!(store.generation().unwrap(), Some(1));
        // Clean reopen does not disturb the generation.
        let again = ExecutionStore::open(store.root()).unwrap();
        assert_eq!(again.generation().unwrap(), Some(1));
    }

    #[test]
    fn delete_artifact_is_journaled_and_tolerates_absence() {
        let store = ExecutionStore::open(tmpdir("delart")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store
            .save_artifact(
                "poisson",
                "a1",
                "ckpt",
                "histpc-ckpt v1\nat_us 5\ndigest 9\n",
            )
            .unwrap();
        let gen_before = store.generation().unwrap();
        assert!(store.delete_artifact("poisson", "a1", "ckpt").unwrap());
        assert!(!store.root().join("poisson").join("a1.ckpt").exists());
        assert!(store.generation().unwrap() > gen_before);
        // The record survives; the second delete is a clean no-op.
        assert!(store.load("poisson", "a1").is_ok());
        assert!(!store.delete_artifact("poisson", "a1", "ckpt").unwrap());
        // Manifest no longer indexes the artifact: fsck finds no drift.
        let diags = crate::fsck::fsck(store.root());
        assert!(diags.is_empty(), "unexpected findings: {diags:?}");
    }

    #[test]
    fn orphaned_checkpoints_reports_ckpts_without_records() {
        let store = ExecutionStore::open(tmpdir("orphans")).unwrap();
        store.save(&rec("poisson", "done")).unwrap();
        store.save_artifact("poisson", "done", "ckpt", "x").unwrap();
        store
            .save_artifact("poisson", "crashed", "ckpt", "x")
            .unwrap();
        // An application directory with nothing but a checkpoint: the
        // session crashed before its first completed run.
        store.save_artifact("ocean", "c0", "ckpt", "x").unwrap();
        assert_eq!(
            store.orphaned_checkpoints().unwrap(),
            vec![
                ("ocean".to_string(), "c0".to_string()),
                ("poisson".to_string(), "crashed".to_string()),
            ]
        );
        // The read-only scan agrees without opening the store.
        assert_eq!(
            orphaned_checkpoints_at(store.root()).unwrap(),
            store.orphaned_checkpoints().unwrap()
        );
    }

    #[test]
    fn labels_and_applications() {
        let store = ExecutionStore::open(tmpdir("labels")).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.save(&rec("ocean", "o1")).unwrap();
        assert_eq!(store.labels("poisson").unwrap(), vec!["a1", "a2"]);
        assert_eq!(store.labels("nothere").unwrap(), Vec::<String>::new());
        assert_eq!(store.applications().unwrap(), vec!["ocean", "poisson"]);
        assert_eq!(store.load_all("poisson").unwrap().len(), 2);
    }

    #[test]
    fn listings_skip_tmp_and_corrupt_leftovers() {
        let store = ExecutionStore::open(tmpdir("phantom")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        // A crashed run's litter, planted directly.
        let ghost = store.root().join("ghost");
        std::fs::create_dir_all(&ghost).unwrap();
        std::fs::write(ghost.join("g1.record.tmp"), "half a write").unwrap();
        std::fs::write(ghost.join("g2.record.corrupt"), "quarantined").unwrap();
        assert_eq!(store.labels("ghost").unwrap(), Vec::<String>::new());
        assert_eq!(store.applications().unwrap(), vec!["poisson"]);
        assert!(store.load_all("ghost").unwrap().is_empty());
    }

    #[test]
    fn missing_record_is_not_found() {
        let store = ExecutionStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(store.load("x", "y"), Err(StoreError::NotFound(_))));
        assert!(matches!(
            store.delete("x", "y"),
            Err(StoreError::NotFound(_))
        ));
        // NotFound (not Io) also when the app directory itself is gone.
        assert!(matches!(
            store.load_artifact("x", "y", "shg"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn delete_removes_record_and_siblings() {
        let store = ExecutionStore::open(tmpdir("delete")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let dir = store.root().join("poisson");
        std::fs::write(dir.join("a1.record.tmp"), "half").unwrap();
        std::fs::write(dir.join("a1.record.corrupt"), "old damage").unwrap();
        store.delete("poisson", "a1").unwrap();
        assert!(store.labels("poisson").unwrap().is_empty());
        assert!(!dir.join("a1.record.tmp").exists());
        assert!(!dir.join("a1.record.corrupt").exists());
        assert!(matches!(
            store.delete("poisson", "a1"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn save_leaves_no_tmp_sibling() {
        let store = ExecutionStore::open(tmpdir("atomic")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store
            .save_artifact("poisson", "a1", "shg", "graph\n")
            .unwrap();
        let names: Vec<String> = std::fs::read_dir(store.root().join("poisson"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "stray tmp files: {names:?}"
        );
        assert_eq!(
            store.load_artifact("poisson", "a1", "shg").unwrap(),
            "graph\n"
        );
    }

    #[test]
    fn load_all_salvages_parseable_prefix() {
        let store = ExecutionStore::open(tmpdir("salvage")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        // Damage a2 on disk: unframed, with an unparseable line mid-file
        // — the prefix (header + app) is still usable.
        let path = store.root().join("poisson").join("a2.record");
        std::fs::write(&path, "histpc-record v1\napp poisson\noutcome true\n").unwrap();

        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 2, "salvage keeps the damaged record");
        assert_eq!(records[1].label, "a2", "label repaired from file stem");
        assert!(records[1].outcomes.is_empty(), "damaged tail dropped");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("salvaged"), "warning: {}", warnings[0]);
        // The salvaged record was re-saved framed; a second load is clean.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("histpc-frame v1 "));
        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 2);
        assert!(warnings.is_empty());
    }

    #[test]
    fn load_all_quarantines_hopeless_records() {
        let store = ExecutionStore::open(tmpdir("quarantine")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        // Nothing salvageable: the record header itself is garbage.
        let path = store.root().join("poisson").join("a2.record");
        std::fs::write(&path, "complete nonsense\nmore nonsense\n").unwrap();

        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "a1");
        assert_eq!(warnings.len(), 1);
        assert!(
            warnings[0].contains("quarantined"),
            "warning: {}",
            warnings[0]
        );
        assert!(store
            .root()
            .join("poisson")
            .join("a2.record.corrupt")
            .exists());
        assert_eq!(store.labels("poisson").unwrap(), vec!["a1"]);
        // A second load is clean.
        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 1);
        assert!(warnings.is_empty());
    }

    #[test]
    fn checksum_mismatch_is_detected_and_salvaged() {
        let store = ExecutionStore::open(tmpdir("bitflip")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let path = store.root().join("poisson").join("a1.record");
        // Flip one byte of the payload without touching the header.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load("poisson", "a1"),
            Err(StoreError::Integrity { .. })
        ));
        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 1, "prefix before the flipped byte salvages");
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn save_overwrites() {
        let store = ExecutionStore::open(tmpdir("overwrite")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let mut r2 = rec("poisson", "a1");
        r2.pairs_tested = 99;
        store.save(&r2).unwrap();
        assert_eq!(store.load("poisson", "a1").unwrap().pairs_tested, 99);
        assert_eq!(store.labels("poisson").unwrap().len(), 1);
    }

    #[test]
    fn v0_store_stays_loadable_and_migrates() {
        let dir = tmpdir("migrate");
        // Hand-build a v0 loose-file store: raw records, no control files.
        let app = dir.join("poisson");
        std::fs::create_dir_all(&app).unwrap();
        std::fs::write(app.join("a1.record"), write_record(&rec("poisson", "a1"))).unwrap();
        std::fs::write(app.join("a1.shg"), "graph\n").unwrap();

        let store = ExecutionStore::open(&dir).unwrap();
        // open() leaves an untouched v0 store alone...
        assert!(!dir.join(manifest::MANIFEST_FILE).exists());
        // ...but reads it fine.
        assert_eq!(store.load("poisson", "a1").unwrap().label, "a1");
        assert_eq!(store.generation().unwrap(), None);

        let migrated = store.migrate().unwrap();
        assert_eq!(migrated, 1);
        assert!(dir.join(manifest::MANIFEST_FILE).exists());
        assert!(dir.join(crate::journal::JOURNAL_FILE).exists());
        let text = std::fs::read_to_string(app.join("a1.record")).unwrap();
        assert!(text.starts_with("histpc-frame v1 "));
        assert_eq!(store.load("poisson", "a1").unwrap().label, "a1");
        assert_eq!(
            store.load_artifact("poisson", "a1", "shg").unwrap(),
            "graph\n"
        );
        // Idempotent.
        assert_eq!(store.migrate().unwrap(), 0);
    }

    #[test]
    fn first_write_into_v0_store_builds_full_manifest() {
        let dir = tmpdir("v0write");
        let app = dir.join("poisson");
        std::fs::create_dir_all(&app).unwrap();
        std::fs::write(app.join("a1.record"), write_record(&rec("poisson", "a1"))).unwrap();
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        match Manifest::load(&dir).unwrap() {
            ManifestState::Loaded(m) => {
                assert!(
                    m.lookup("poisson/a1.record").is_some(),
                    "legacy file indexed"
                );
                assert!(m.lookup("poisson/a2.record").is_some());
            }
            other => panic!("expected manifest, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_is_recovered_on_open() {
        let dir = tmpdir("stalelock");
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        std::fs::write(
            StoreLock::path_in(&dir),
            format!("{}\npid {DEAD_PID}\n", lock::LOCK_HEADER),
        )
        .unwrap();
        let again = ExecutionStore::open(&dir).unwrap();
        assert!(!StoreLock::path_in(&dir).exists(), "stale lock broken");
        assert_eq!(again.load("poisson", "a1").unwrap().label, "a1");
    }

    #[test]
    fn mutation_fails_fast_when_live_process_holds_lock() {
        let dir = tmpdir("heldlock");
        let store = ExecutionStore::open(&dir).unwrap();
        // Forge a lock owned by a live process that is not us: pid 1 is
        // always alive on Linux.
        std::fs::write(
            StoreLock::path_in(&dir),
            format!("{}\npid 1\n", lock::LOCK_HEADER),
        )
        .unwrap();
        if !lock::pid_alive(1) {
            return; // no procfs — cannot stage this scenario
        }
        match store.save(&rec("poisson", "a1")) {
            Err(StoreError::Locked { pid }) => assert_eq!(pid, 1),
            other => panic!("expected Locked, got {other:?}"),
        }
        std::fs::remove_file(StoreLock::path_in(&dir)).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
    }

    #[test]
    fn crash_before_rename_rolls_back_keeping_old_record() {
        let dir = tmpdir("rollback");
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let old = store.load("poisson", "a1").unwrap();
        // Stage the crash: intent journaled, tmp half-written, target
        // still old, lock left behind by the "dead" writer.
        let mut r2 = rec("poisson", "a1");
        r2.pairs_tested = 777;
        let new_payload = write_record(&r2);
        Journal::at(&dir)
            .append(&JournalEntry::Put {
                fnv: frame::fnv64(new_payload.as_bytes()),
                ext: "record".into(),
                app: "poisson".into(),
                label: "a1".into(),
            })
            .unwrap();
        let target = store.record_path("poisson", "a1");
        let framed = frame::encode(&new_payload);
        std::fs::write(tmp_sibling(&target), &framed[..framed.len() / 2]).unwrap();
        std::fs::write(
            StoreLock::path_in(&dir),
            format!("{}\npid {DEAD_PID}\n", lock::LOCK_HEADER),
        )
        .unwrap();

        let again = ExecutionStore::open(&dir).unwrap();
        let rec_after = again.load("poisson", "a1").unwrap();
        assert_eq!(rec_after.pairs_tested, old.pairs_tested, "old record kept");
        assert!(!tmp_sibling(&target).exists());
        assert!(Journal::at(&dir).read().unwrap().uncommitted().is_none());
    }

    #[test]
    fn crash_with_complete_tmp_rolls_forward() {
        let dir = tmpdir("rollforward");
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let mut r2 = rec("poisson", "a1");
        r2.pairs_tested = 777;
        let new_payload = write_record(&r2);
        Journal::at(&dir)
            .append(&JournalEntry::Put {
                fnv: frame::fnv64(new_payload.as_bytes()),
                ext: "record".into(),
                app: "poisson".into(),
                label: "a1".into(),
            })
            .unwrap();
        let target = store.record_path("poisson", "a1");
        std::fs::write(tmp_sibling(&target), frame::encode(&new_payload)).unwrap();

        let again = ExecutionStore::open(&dir).unwrap();
        assert_eq!(
            again.load("poisson", "a1").unwrap().pairs_tested,
            777,
            "complete tmp file promoted"
        );
        assert!(!tmp_sibling(&target).exists());
    }

    #[test]
    fn torn_record_at_every_byte_offset_recovers() {
        // The tentpole crash-recovery property, exhaustively: tearing a
        // journaled record write at every byte offset always yields the
        // old record, the new record, or a salvaged prefix — never a
        // parse error escaping open()/load_all.
        let dir = tmpdir("everyoffset");
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let full = std::fs::read_to_string(store.record_path("poisson", "a1")).unwrap();
        for cut in 0..full.len() {
            store
                .inject_torn_write("poisson", "a1", cut as f64 / full.len() as f64)
                .unwrap();
            let again = ExecutionStore::open(&dir).unwrap();
            let (records, _warnings) = again.load_all_with_warnings("poisson").unwrap();
            for r in &records {
                assert_eq!(r.app_name, "poisson", "cut {cut}: wrong app");
                assert_eq!(r.label, "a1", "cut {cut}: wrong label");
            }
            assert!(
                Journal::at(&dir).read().unwrap().uncommitted().is_none(),
                "cut {cut}: journal not settled"
            );
            // Restore the full record for the next offset (quarantine
            // may have consumed it).
            store.save(&rec("poisson", "a1")).unwrap();
            let _ = std::fs::remove_file(store.root().join("poisson").join("a1.record.corrupt"));
        }
    }

    #[test]
    fn torn_journal_recovers() {
        let dir = tmpdir("tornjournal");
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        for cut in [0.1, 0.5, 0.9] {
            store.inject_torn_journal("poisson", "a1", cut).unwrap();
            let again = ExecutionStore::open(&dir).unwrap();
            let st = Journal::at(&dir).read().unwrap();
            assert!(!st.torn, "cut {cut}: journal still torn after open");
            assert!(st.uncommitted().is_none());
            assert_eq!(again.load("poisson", "a1").unwrap().label, "a1");
        }
    }

    #[test]
    fn repair_and_compact_clean_litter() {
        let dir = tmpdir("repaircompact");
        let store = ExecutionStore::open(&dir).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        // Litter: stray tmp + torn record + garbage manifest.
        std::fs::write(dir.join("poisson").join("zz.record.tmp"), "half").unwrap();
        store.inject_torn_write("poisson", "a2", 0.5).unwrap();
        std::fs::write(dir.join(manifest::MANIFEST_FILE), "garbage\n").unwrap();

        let notes = store.repair().unwrap();
        assert!(!notes.is_empty());
        assert!(!dir.join("poisson").join("zz.record.tmp").exists());
        match Manifest::load(&dir).unwrap() {
            ManifestState::Loaded(_) => {}
            other => panic!("manifest not rebuilt: {other:?}"),
        }
        assert_eq!(store.load_all("poisson").unwrap().len(), 2);

        let notes = store.compact().unwrap();
        assert!(notes.iter().any(|n| n.contains("rebuilt manifest")));
        assert!(Journal::at(&dir).read().unwrap().entries.is_empty());
    }

    #[test]
    fn journal_is_truncated_once_large() {
        let dir = tmpdir("journaltrunc");
        let store = ExecutionStore::open(&dir).unwrap();
        // Long labels make each journal line ~190 bytes, so 400 writes
        // (~78 KiB of intents) cross JOURNAL_RESET_LEN mid-run.
        for i in 0..400 {
            let label = format!("r{i}-{}", "x".repeat(150));
            store
                .save_artifact("poisson", &label, "note", "text\n")
                .unwrap();
        }
        let len = std::fs::metadata(Journal::at(&dir).path()).unwrap().len();
        assert!(
            len < JOURNAL_RESET_LEN,
            "journal grew without bound: {len} bytes"
        );
    }

    #[test]
    fn salvage_prefix_cases() {
        // Pure-function coverage of the salvage loop.
        let good = "histpc-record v1\napp x\nversion 2\nlabel y\n";
        let (r, kept, total) = salvage_record_text("stem", good).unwrap();
        assert_eq!((kept, total), (4, 4));
        assert_eq!(r.label, "y", "existing label wins over file stem");

        // Torn final line (no newline) is dropped even though it parses.
        let torn_tail = "histpc-record v1\napp x\nversion 2";
        let (r, kept, total) = salvage_record_text("stem", torn_tail).unwrap();
        assert_eq!((kept, total), (2, 3));
        assert_eq!(r.label, "stem", "label repaired from file stem");
        assert!(r.app_version.is_empty());

        // Garbage mid-file: keep the prefix before it.
        let mid = "histpc-record v1\napp x\ngarbage here\nversion 2\n";
        let (_, kept, _) = salvage_record_text("stem", mid).unwrap();
        assert_eq!(kept, 2);

        // Nothing before the damage.
        assert!(salvage_record_text("stem", "nonsense\napp x\n").is_none());
        assert!(salvage_record_text("stem", "histpc-record v1\nlabel y\n").is_none());
        assert!(salvage_record_text("stem", "").is_none());
    }
}
