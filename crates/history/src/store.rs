//! A directory-backed store of execution records.
//!
//! This is the "available store of performance data gathered from one or
//! more previous program runs" of the paper's §6, organized as
//! `<root>/<application>/<label>.record` text files.

use crate::format::{parse_record, write_record, FormatError};
use crate::record::ExecutionRecord;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// Store errors.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A record file failed to parse.
    Format(FormatError),
    /// No such record.
    NotFound(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(e) => write!(f, "store format error: {e}"),
            StoreError::NotFound(what) => write!(f, "record not found: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FormatError> for StoreError {
    fn from(e: FormatError) -> Self {
        StoreError::Format(e)
    }
}

/// A multi-execution performance data store rooted at a directory.
#[derive(Debug, Clone)]
pub struct ExecutionStore {
    root: PathBuf,
}

impl ExecutionStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<ExecutionStore, StoreError> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(ExecutionStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn record_path(&self, app: &str, label: &str) -> PathBuf {
        self.root.join(app).join(format!("{label}.record"))
    }

    /// Writes `text` to `path` atomically: to a `.tmp` sibling first,
    /// then rename into place. A crash (or injected fault) mid-write
    /// leaves either the old file or the new one, never a torn record.
    fn atomic_write(path: &Path, text: &str) -> Result<(), StoreError> {
        let mut tmp_name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Saves a record (overwriting an existing one with the same
    /// application and label). The write is atomic.
    pub fn save(&self, rec: &ExecutionRecord) -> Result<(), StoreError> {
        let dir = self.root.join(&rec.app_name);
        std::fs::create_dir_all(&dir)?;
        let path = self.record_path(&rec.app_name, &rec.label);
        Self::atomic_write(&path, &write_record(rec))
    }

    /// Loads the record for (application, label).
    pub fn load(&self, app: &str, label: &str) -> Result<ExecutionRecord, StoreError> {
        let path = self.record_path(app, label);
        if !path.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}")));
        }
        let text = std::fs::read_to_string(&path)?;
        Ok(parse_record(&text)?)
    }

    /// The labels of all stored runs of an application, sorted.
    pub fn labels(&self, app: &str) -> Result<Vec<String>, StoreError> {
        let dir = self.root.join(app);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().to_string();
            if let Some(label) = name.strip_suffix(".record") {
                out.push(label.to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The names of all applications with stored runs, sorted.
    pub fn applications(&self) -> Result<Vec<String>, StoreError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_dir() {
                out.push(entry.file_name().to_string_lossy().to_string());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Loads every stored run of an application, sorted by label.
    /// Unparseable records are quarantined (see
    /// [`ExecutionStore::load_all_with_warnings`]); their warnings are
    /// discarded here.
    pub fn load_all(&self, app: &str) -> Result<Vec<ExecutionRecord>, StoreError> {
        Ok(self.load_all_with_warnings(app)?.0)
    }

    /// Loads every stored run of an application, sorted by label,
    /// quarantining corrupt files instead of failing the whole load: a
    /// record that does not parse is renamed to `<label>.record.corrupt`
    /// and reported as a warning, and the remaining records still load.
    /// I/O errors still fail the load.
    pub fn load_all_with_warnings(
        &self,
        app: &str,
    ) -> Result<(Vec<ExecutionRecord>, Vec<String>), StoreError> {
        let mut records = Vec::new();
        let mut warnings = Vec::new();
        for label in self.labels(app)? {
            match self.load(app, &label) {
                Ok(rec) => records.push(rec),
                Err(StoreError::Format(e)) => {
                    let path = self.record_path(app, &label);
                    let mut quarantined = path.clone().into_os_string();
                    quarantined.push(".corrupt");
                    std::fs::rename(&path, &quarantined)?;
                    warnings.push(format!(
                        "quarantined corrupt record {app}/{label}.record ({e}); \
                         moved to {label}.record.corrupt"
                    ));
                }
                Err(e) => return Err(e),
            }
        }
        Ok((records, warnings))
    }

    /// Saves a named auxiliary artifact next to a record — e.g. the
    /// Search History Graph rendering (`ext = "shg"`) or a directive
    /// file harvested from the run. The write is atomic.
    pub fn save_artifact(
        &self,
        app: &str,
        label: &str,
        ext: &str,
        text: &str,
    ) -> Result<(), StoreError> {
        let dir = self.root.join(app);
        std::fs::create_dir_all(&dir)?;
        Self::atomic_write(&dir.join(format!("{label}.{ext}")), text)
    }

    /// Loads an auxiliary artifact saved with [`ExecutionStore::save_artifact`].
    pub fn load_artifact(&self, app: &str, label: &str, ext: &str) -> Result<String, StoreError> {
        let path = self.root.join(app).join(format!("{label}.{ext}"));
        if !path.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}.{ext}")));
        }
        Ok(std::fs::read_to_string(path)?)
    }

    /// Deletes one record.
    pub fn delete(&self, app: &str, label: &str) -> Result<(), StoreError> {
        let path = self.record_path(app, label);
        if !path.exists() {
            return Err(StoreError::NotFound(format!("{app}/{label}")));
        }
        std::fs::remove_file(path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::{Focus, ResourceName, ResourceSpace};
    use histpc_sim::SimTime;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("histpc-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(app: &str, label: &str) -> ExecutionRecord {
        let mut space = ResourceSpace::new();
        space
            .add_resource(&ResourceName::parse("/Code/a.c/f").unwrap())
            .unwrap();
        ExecutionRecord {
            app_name: app.into(),
            app_version: "A".into(),
            label: label.into(),
            resources: space
                .hierarchies()
                .iter()
                .flat_map(|h| h.all_names())
                .collect(),
            outcomes: vec![histpc_consultant::NodeOutcome {
                hypothesis: "CPUbound".into(),
                focus: Focus::whole_program(["Code"]),
                outcome: histpc_consultant::Outcome::True,
                first_true_at: Some(SimTime(5)),
                concluded_at: Some(SimTime(5)),
                last_value: 0.5,
                samples: 4,
            }],
            thresholds_used: vec![],
            end_time: SimTime(100),
            pairs_tested: 3,
            unreachable: vec![],
        }
    }

    #[test]
    fn save_load_roundtrip() {
        let store = ExecutionStore::open(tmpdir("roundtrip")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let loaded = store.load("poisson", "a1").unwrap();
        assert_eq!(loaded.label, "a1");
        assert_eq!(loaded.outcomes.len(), 1);
    }

    #[test]
    fn labels_and_applications() {
        let store = ExecutionStore::open(tmpdir("labels")).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.save(&rec("ocean", "o1")).unwrap();
        assert_eq!(store.labels("poisson").unwrap(), vec!["a1", "a2"]);
        assert_eq!(store.labels("nothere").unwrap(), Vec::<String>::new());
        assert_eq!(store.applications().unwrap(), vec!["ocean", "poisson"]);
        assert_eq!(store.load_all("poisson").unwrap().len(), 2);
    }

    #[test]
    fn missing_record_is_not_found() {
        let store = ExecutionStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(store.load("x", "y"), Err(StoreError::NotFound(_))));
        assert!(matches!(
            store.delete("x", "y"),
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn delete_removes_record() {
        let store = ExecutionStore::open(tmpdir("delete")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.delete("poisson", "a1").unwrap();
        assert!(store.labels("poisson").unwrap().is_empty());
    }

    #[test]
    fn save_leaves_no_tmp_sibling() {
        let store = ExecutionStore::open(tmpdir("atomic")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store
            .save_artifact("poisson", "a1", "shg", "graph\n")
            .unwrap();
        let names: Vec<String> = std::fs::read_dir(store.root().join("poisson"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "stray tmp files: {names:?}"
        );
        assert_eq!(
            store.load_artifact("poisson", "a1", "shg").unwrap(),
            "graph\n"
        );
    }

    #[test]
    fn load_all_quarantines_corrupt_records() {
        let store = ExecutionStore::open(tmpdir("quarantine")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        store.save(&rec("poisson", "a2")).unwrap();
        // Corrupt a2 on disk: an unparseable line mid-file.
        let path = store.root().join("poisson").join("a2.record");
        std::fs::write(&path, "histpc-record v1\napp poisson\noutcome true\n").unwrap();

        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].label, "a1");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("a2"), "warning: {}", warnings[0]);
        // The corrupt file is set aside, not deleted, and no longer
        // counts as a record.
        assert!(store
            .root()
            .join("poisson")
            .join("a2.record.corrupt")
            .exists());
        assert_eq!(store.labels("poisson").unwrap(), vec!["a1"]);
        // A second load is clean.
        let (records, warnings) = store.load_all_with_warnings("poisson").unwrap();
        assert_eq!(records.len(), 1);
        assert!(warnings.is_empty());
    }

    #[test]
    fn save_overwrites() {
        let store = ExecutionStore::open(tmpdir("overwrite")).unwrap();
        store.save(&rec("poisson", "a1")).unwrap();
        let mut r2 = rec("poisson", "a1");
        r2.pairs_tested = 99;
        store.save(&r2).unwrap();
        assert_eq!(store.load("poisson", "a1").unwrap().pairs_tested, 99);
        assert_eq!(store.labels("poisson").unwrap().len(), 1);
    }
}
