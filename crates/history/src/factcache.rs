//! Sidecar cache of per-record derived facts.
//!
//! Corpus-wide analysis (`histpc lint corpus`) lowers every stored
//! record into a small fact table; re-deriving those facts for a
//! million-run store on every analysis would dominate the pass time.
//! The [`FactCache`] persists the derived payload per record, keyed on
//! the record's relative path plus the same FNV-64 payload checksum the
//! store manifest already tracks — so a re-analysis only re-derives
//! facts for records whose bytes actually changed (O(changed records)).
//!
//! The cache is *strictly advisory*: it lives in a single root-level
//! `FACTS` file (invisible to [`crate::fsck`], which only walks
//! `<app>/` data directories), a damaged or missing file simply means a
//! cold re-derivation, and saves are atomic (tmp + rename) and
//! best-effort. The payload format is opaque to this crate — callers
//! (the lint crate) define their own fact serialization and version it
//! themselves via the `key` they pass.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// The sidecar file name, directly under the store root.
pub const FACTCACHE_FILE: &str = "FACTS";

/// First line of the sidecar file.
pub const FACTCACHE_HEADER: &str = "histpc-factcache v1";

/// A persistent map of `rel_path -> (key, payload)` with tolerant
/// loading and atomic best-effort saving.
///
/// `key` is an opaque 64-bit cache key chosen by the caller (typically
/// the record's payload checksum XOR a fingerprint of the derivation
/// options); a lookup only hits when the stored key matches exactly.
#[derive(Debug, Clone, Default)]
pub struct FactCache {
    entries: BTreeMap<String, (u64, String)>,
}

impl FactCache {
    /// An empty cache.
    pub fn new() -> FactCache {
        FactCache::default()
    }

    /// Loads the sidecar from a store root. A missing, unreadable, or
    /// malformed file yields an empty cache — never an error; the worst
    /// outcome of a damaged cache is a cold re-derivation.
    pub fn load(root: &Path) -> FactCache {
        let path = root.join(FACTCACHE_FILE);
        match std::fs::read_to_string(&path) {
            Ok(text) => Self::parse(&text).unwrap_or_default(),
            Err(_) => FactCache::default(),
        }
    }

    /// The cached payload for a record, if present *and* keyed with the
    /// same `key` (stale entries miss).
    pub fn lookup(&self, rel_path: &str, key: u64) -> Option<&str> {
        match self.entries.get(rel_path) {
            Some((k, payload)) if *k == key => Some(payload),
            _ => None,
        }
    }

    /// Inserts (or replaces) the cached payload for a record.
    pub fn insert(&mut self, rel_path: &str, key: u64, payload: String) {
        self.entries.insert(rel_path.to_string(), (key, payload));
    }

    /// Drops entries for records that no longer exist, so deleted runs
    /// do not pin stale facts forever.
    pub fn retain_paths(&mut self, live: &BTreeSet<String>) {
        self.entries.retain(|rel, _| live.contains(rel));
    }

    /// Number of cached records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the cache. Entries are length-prefixed so payloads
    /// may contain anything (including blank lines), and emitted in
    /// `BTreeMap` order so equal caches serialize identically.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(FACTCACHE_HEADER);
        out.push('\n');
        for (rel, (key, payload)) in &self.entries {
            out.push_str(&format!("entry {key:016x} {} {rel}\n", payload.len()));
            out.push_str(payload);
            out.push('\n');
        }
        out
    }

    /// Parses a serialized cache. Any structural damage returns `None`
    /// (the caller treats it as empty).
    pub fn parse(text: &str) -> Option<FactCache> {
        let rest = text.strip_prefix(FACTCACHE_HEADER)?.strip_prefix('\n')?;
        let mut entries = BTreeMap::new();
        let mut pos = 0;
        while pos < rest.len() {
            let line_end = rest[pos..].find('\n').map(|i| pos + i)?;
            let line = &rest[pos..line_end];
            let meta = line.strip_prefix("entry ")?;
            let mut parts = meta.splitn(3, ' ');
            let key = u64::from_str_radix(parts.next()?, 16).ok()?;
            let len: usize = parts.next()?.parse().ok()?;
            let rel = parts.next()?.to_string();
            let payload_start = line_end + 1;
            let payload_end = payload_start.checked_add(len)?;
            if payload_end > rest.len() || !rest.is_char_boundary(payload_end) {
                return None;
            }
            let payload = rest[payload_start..payload_end].to_string();
            if rest.as_bytes().get(payload_end) != Some(&b'\n') {
                return None;
            }
            entries.insert(rel, (key, payload));
            pos = payload_end + 1;
        }
        Some(FactCache { entries })
    }

    /// Writes the sidecar atomically (tmp + rename) under a store root.
    /// Callers on the analysis path should treat failure as non-fatal:
    /// the cache is an accelerator, not a source of truth.
    pub fn save(&self, root: &Path) -> io::Result<()> {
        let tmp = root.join(format!("{FACTCACHE_FILE}.tmp"));
        let target = root.join(FACTCACHE_FILE);
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, &target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "histpc-factcache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrips_payloads_with_newlines_and_blank_lines() {
        let mut c = FactCache::new();
        c.insert("app/run-1.record", 0xdead_beef, "line1\n\nline3".into());
        c.insert("app/run-2.record", 7, String::new());
        let parsed = FactCache::parse(&c.to_text()).unwrap();
        assert_eq!(
            parsed.lookup("app/run-1.record", 0xdead_beef),
            Some("line1\n\nline3")
        );
        assert_eq!(parsed.lookup("app/run-2.record", 7), Some(""));
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn stale_key_misses() {
        let mut c = FactCache::new();
        c.insert("a/b.record", 1, "facts".into());
        assert_eq!(c.lookup("a/b.record", 1), Some("facts"));
        assert_eq!(c.lookup("a/b.record", 2), None);
        assert_eq!(c.lookup("a/c.record", 1), None);
    }

    #[test]
    fn damaged_text_parses_to_none_and_load_tolerates_anything() {
        assert!(FactCache::parse("not a factcache").is_none());
        assert!(FactCache::parse("histpc-factcache v1\nentry zz 3 a\nxyz\n").is_none());
        // Truncated payload.
        assert!(
            FactCache::parse("histpc-factcache v1\nentry 0000000000000001 99 a/b\nshort\n")
                .is_none()
        );
        let dir = scratch("damaged");
        std::fs::write(dir.join(FACTCACHE_FILE), "garbage").unwrap();
        assert!(FactCache::load(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_and_load_roundtrip_and_retain() {
        let dir = scratch("roundtrip");
        let mut c = FactCache::new();
        c.insert("app/one.record", 11, "one".into());
        c.insert("app/two.record", 22, "two".into());
        c.save(&dir).unwrap();
        let mut back = FactCache::load(&dir);
        assert_eq!(back.lookup("app/two.record", 22), Some("two"));
        let live: BTreeSet<String> = ["app/one.record".to_string()].into_iter().collect();
        back.retain_paths(&live);
        assert_eq!(back.len(), 1);
        assert_eq!(back.lookup("app/two.record", 22), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
