//! Property tests: well-formed directive files survive a format→parse
//! round trip, lint clean, and the linter never panics on garbage.

use histpc_consultant::directive::parse_with_spans;
use histpc_consultant::{
    PriorityDirective, PriorityLevel, Prune, PruneTarget, SearchDirectives, ThresholdDirective,
};
use histpc_lint::Linter;
use histpc_resources::{Focus, ResourceName};
use proptest::prelude::*;

fn segment() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.]{0,8}".prop_map(|s| s)
}

fn hypothesis() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("CPUbound".to_string()),
        Just("ExcessiveSyncWaitingTime".to_string()),
        Just("ExcessiveIOBlockingTime".to_string()),
    ]
}

fn focus() -> impl Strategy<Value = Focus> {
    (segment(), prop::option::of(segment())).prop_map(|(code, proc_)| {
        let mut f = Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
            .with_selection(ResourceName::new(["Code".to_string(), code]).unwrap());
        if let Some(p) = proc_ {
            f = f.with_selection(ResourceName::new(["Process".to_string(), p]).unwrap());
        }
        f
    })
}

/// Directive sets constructed so they should be lint-clean: hypotheses
/// from the registry, thresholds in (0, 1], subtree prunes confined to
/// /SyncObject while foci refine /Code and /Process (so nothing shadows
/// and no high priority lands on a pruned focus), duplicates removed.
fn clean_directives() -> impl Strategy<Value = SearchDirectives> {
    (
        prop::collection::vec(
            (
                hypothesis(),
                focus(),
                prop_oneof![Just(PriorityLevel::High), Just(PriorityLevel::Low),],
            ),
            0..6,
        ),
        prop::collection::vec((hypothesis(), segment()), 0..4),
        prop::collection::vec((hypothesis(), 1u32..=100), 0..3),
    )
        .prop_map(|(priorities, prunes, thresholds)| {
            let mut d = SearchDirectives::none();
            for (h, f, l) in priorities {
                d.add_priority(PriorityDirective {
                    hypothesis: h,
                    focus: f,
                    level: l,
                });
            }
            for (h, s) in prunes {
                let p = Prune {
                    hypothesis: Some(h),
                    target: PruneTarget::Resource(
                        ResourceName::new(["SyncObject".to_string(), s]).unwrap(),
                    ),
                };
                if !d.prunes.contains(&p) {
                    d.add_prune(p);
                }
            }
            for (h, t) in thresholds {
                d.add_threshold(ThresholdDirective {
                    hypothesis: h,
                    value: f64::from(t) / 100.0,
                });
            }
            d
        })
}

proptest! {
    /// parse(format(d)) == d for well-formed directive sets.
    #[test]
    fn directive_format_parse_roundtrip(d in clean_directives()) {
        let text = d.to_text();
        let parsed = SearchDirectives::parse(&text).unwrap();
        prop_assert_eq!(parsed.prunes, d.prunes);
        prop_assert_eq!(parsed.priorities, d.priorities);
        prop_assert_eq!(parsed.thresholds.len(), d.thresholds.len());
        for t in &d.thresholds {
            prop_assert_eq!(parsed.threshold_for(&t.hypothesis), Some(t.value));
        }
    }

    /// The formatted output of a well-formed directive set lints clean.
    #[test]
    fn formatted_directives_lint_clean(d in clean_directives()) {
        let report = Linter::new().directives(d.to_text(), "gen.dirs").run();
        prop_assert!(
            report.is_clean(),
            "expected clean, got:\n{}",
            report.render(&histpc_lint::SourceCache::new())
        );
    }

    /// The linter neither panics nor loses track of errors on garbage:
    /// if span-aware parsing errors on a text, so does the lint report.
    #[test]
    fn linter_total_on_arbitrary_text(text in ".{0,200}") {
        let report = Linter::new().artifact(text.clone(), "fuzz").run();
        if histpc_lint::ArtifactKind::detect(&text) == histpc_lint::ArtifactKind::Directives {
            let (_, parse_diags) = parse_with_spans(&text, "fuzz");
            if parse_diags.iter().any(|d| d.is_error()) {
                prop_assert!(!report.diagnostics.is_empty());
            }
        }
        // Rendering is total too.
        let mut sources = histpc_lint::SourceCache::new();
        sources.insert("fuzz", &text);
        let _ = report.render(&sources);
    }
}
