//! Keeps the diagnostic-code registry and the written design in
//! lockstep: every registered code must be documented in `DESIGN.md`,
//! and every `HLxxx` literal the sources emit must be registered.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

#[test]
fn every_registered_code_is_documented_in_design_md() {
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).unwrap();
    let missing: Vec<&str> = histpc_lint::codes::ALL
        .iter()
        .map(|info| info.code)
        .filter(|code| !design.contains(code))
        .collect();
    assert!(
        missing.is_empty(),
        "codes registered but absent from DESIGN.md: {missing:?}"
    );
}

#[test]
fn every_code_literal_in_sources_is_registered() {
    let root = workspace_root();
    let mut unregistered = Vec::new();
    for krate in ["lint", "consultant", "history", "resources"] {
        scan(
            &root.join("crates").join(krate).join("src"),
            &mut unregistered,
        );
    }
    assert!(
        unregistered.is_empty(),
        "HL codes used in sources but missing from the registry: {unregistered:?}"
    );
}

fn scan(dir: &std::path::Path, unregistered: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            scan(&path, unregistered);
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        // Only code that can emit counts: skip comments (prose may name
        // unassigned gaps) and everything from the first test module on
        // (tests exercise rejection of unknown codes on purpose).
        for line in text.lines() {
            if line.trim_start().starts_with("#[cfg(test)]") {
                break;
            }
            if line.trim_start().starts_with("//") {
                continue;
            }
            for code in hl_literals(line) {
                if histpc_lint::codes::lookup(&code).is_none() && !unregistered.contains(&code) {
                    unregistered.push(code);
                }
            }
        }
    }
}

/// Every `HL` followed by exactly three digits, without regex.
fn hl_literals(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 <= bytes.len() {
        if bytes[i] == b'H'
            && bytes[i + 1] == b'L'
            && bytes[i + 2..i + 5].iter().all(u8::is_ascii_digit)
            && bytes.get(i + 5).is_none_or(|b| !b.is_ascii_digit())
        {
            out.push(text[i..i + 5].to_string());
            i += 5;
        } else {
            i += 1;
        }
    }
    out
}
