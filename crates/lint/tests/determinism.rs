//! Regression tests for the report-level determinism guarantees: sorted
//! by (file, span, code) and exact repeats removed.

use histpc_lint::Linter;

const DIRS: &str = "\
prune CPUBound resource /SyncObject
priority High CPUbound /Code/a.c,/Machine
threshold CPUbound 1.5
";

#[test]
fn same_file_added_twice_reports_once() {
    let once = Linter::new().directives(DIRS, "a.dirs").run();
    let twice = Linter::new()
        .directives(DIRS, "a.dirs")
        .directives(DIRS, "a.dirs")
        .run();
    assert!(!once.diagnostics.is_empty());
    assert_eq!(twice.diagnostics, once.diagnostics);
}

#[test]
fn diagnostics_are_sorted_by_file_span_code() {
    // Feed files in reverse name order; the report must not care.
    let report = Linter::new()
        .directives(DIRS, "z.dirs")
        .directives(DIRS, "a.dirs")
        .run();
    let keys: Vec<_> = report.diagnostics.iter().map(|d| d.sort_key()).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert_eq!(report.diagnostics.first().unwrap().file, "a.dirs");
    assert_eq!(report.diagnostics.last().unwrap().file, "z.dirs");

    // Input order is irrelevant to the output.
    let flipped = Linter::new()
        .directives(DIRS, "a.dirs")
        .directives(DIRS, "z.dirs")
        .run();
    assert_eq!(flipped.diagnostics, report.diagnostics);
}
