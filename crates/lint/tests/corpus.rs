//! Corpus analyzer integration tests: one seeded fixture per `HL03x`
//! code, plus the incremental fact-cache contract over a 1k-run store.

use histpc_consultant::directive::PriorityLevel;
use histpc_consultant::{NodeOutcome, Outcome};
use histpc_history::{ExecutionRecord, ExecutionStore};
use histpc_lint::{CorpusAnalyzer, CorpusOptions};
use histpc_resources::{Focus, ResourceName};
use histpc_sim::SimTime;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-corpus-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn n(s: &str) -> ResourceName {
    ResourceName::parse(s).unwrap()
}

fn wp() -> Focus {
    Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
}

/// An outcome on the whole-program focus narrowed by `sels`.
fn o(hyp: &str, sels: &[&str], outcome: Outcome, value: f64) -> NodeOutcome {
    let mut focus = wp();
    for s in sels {
        focus = focus.with_selection(n(s));
    }
    NodeOutcome {
        hypothesis: hyp.into(),
        focus,
        outcome,
        first_true_at: (outcome == Outcome::True).then_some(SimTime(1)),
        concluded_at: Some(SimTime(1)),
        last_value: value,
        samples: 5,
    }
}

/// A record over a small fixed resource set plus `extra` resources.
fn rec(
    app: &str,
    version: &str,
    label: &str,
    extra: &[&str],
    outcomes: Vec<NodeOutcome>,
) -> ExecutionRecord {
    let mut resources = vec![
        n("/Code"),
        n("/Code/a.c"),
        n("/Code/a.c/f"),
        n("/Code/a.c/g"),
        n("/Machine"),
        n("/Machine/n1"),
        n("/Process"),
        n("/Process/p1"),
        n("/SyncObject"),
    ];
    resources.extend(extra.iter().map(|s| n(s)));
    ExecutionRecord {
        app_name: app.into(),
        app_version: version.into(),
        label: label.into(),
        resources,
        outcomes,
        thresholds_used: vec![],
        end_time: SimTime(10),
        pairs_tested: 1,
        unreachable: vec![],
        saturated: vec![],
    }
}

fn analyze(store: &ExecutionStore) -> histpc_lint::CorpusAnalysis {
    CorpusAnalyzer::new(store).analyze().unwrap()
}

#[test]
fn hl030_cross_run_prune_priority_conflict() {
    let dir = scratch("hl030");
    let store = ExecutionStore::open(&dir).unwrap();
    // Run 1 finds f trivial (subtree prune); run 2 finds f a bottleneck
    // (high priority). The corpus contradicts itself about f.
    store
        .save(&rec(
            "app",
            "A",
            "r1",
            &[],
            vec![o("CPUbound", &["/Code/a.c/f"], Outcome::False, 0.001)],
        ))
        .unwrap();
    store
        .save(&rec(
            "app",
            "A",
            "r2",
            &[],
            vec![o("CPUbound", &["/Code/a.c/f"], Outcome::True, 0.4)],
        ))
        .unwrap();

    let analysis = analyze(&store);
    let conflicts = analysis.report.with_code("HL030");
    assert_eq!(
        conflicts.len(),
        1,
        "report: {:?}",
        analysis.report.diagnostics
    );
    assert!(conflicts[0].message.contains("/Code/a.c/f"));
    assert_eq!(conflicts[0].file, "app/r2.record");
    assert_eq!(analysis.verdicts.len(), 1);

    // Harvest-time vetting: the high priority from r2 and the trivial
    // prune from r1 are both down-ranked.
    let opts = histpc_history::ExtractionOptions::priorities_and_safe_prunes();
    let raw2 = histpc_history::extract(&store.load("app", "r2").unwrap(), &opts);
    let (vetted2, dropped2) = analysis.verdicts.down_rank(&raw2, "app", "A");
    assert_eq!(dropped2, 1);
    assert!(!vetted2
        .priorities
        .iter()
        .any(|p| p.level == PriorityLevel::High
            && p.focus.selection("Code") == Some(&n("/Code/a.c/f"))));

    let raw1 = histpc_history::extract(&store.load("app", "r1").unwrap(), &opts);
    let (vetted1, dropped1) = analysis.verdicts.down_rank(&raw1, "app", "A");
    assert_eq!(dropped1, 1);
    assert!(vetted1.prunes.len() == raw1.prunes.len() - 1);

    // Verdicts are scoped: another app/version is untouched.
    let (other, dropped_other) = analysis.verdicts.down_rank(&raw2, "app", "B");
    assert_eq!(dropped_other, 0);
    assert_eq!(other.to_text(), raw2.to_text());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hl031_stale_resource_outside_recent_window() {
    let dir = scratch("hl031");
    let store = ExecutionStore::open(&dir).unwrap();
    // Oldest run harvests a high priority naming /Code/old.c/h; the
    // resource disappears from every later run.
    store
        .save(&rec(
            "app",
            "A",
            "r1",
            &["/Code/old.c", "/Code/old.c/h"],
            vec![o("CPUbound", &["/Code/old.c/h"], Outcome::True, 0.4)],
        ))
        .unwrap();
    for label in ["r2", "r3", "r4"] {
        store
            .save(&rec(
                "app",
                "A",
                label,
                &[],
                vec![o("CPUbound", &[], Outcome::True, 0.4)],
            ))
            .unwrap();
    }

    let opts = CorpusOptions {
        recent_window: 2,
        ..CorpusOptions::default()
    };
    let analysis = CorpusAnalyzer::with_options(&store, opts)
        .analyze()
        .unwrap();
    let stale = analysis.report.with_code("HL031");
    assert_eq!(stale.len(), 1, "report: {:?}", analysis.report.diagnostics);
    assert!(stale[0].message.contains("/Code/old.c/h"));
    assert_eq!(stale[0].file, "app/r1.record");

    // A window covering every run means nothing is stale.
    let wide = CorpusOptions {
        recent_window: 10,
        ..CorpusOptions::default()
    };
    let analysis = CorpusAnalyzer::with_options(&store, wide)
        .analyze()
        .unwrap();
    assert!(analysis.report.with_code("HL031").is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hl032_threshold_drift_across_runs() {
    let dir = scratch("hl032");
    let store = ExecutionStore::open(&dir).unwrap();
    // Run d1 sees the sync bottleneck at 0.5 (threshold 0.45); run d2
    // sees the same bottleneck at only 0.1 — d1's threshold hides it.
    store
        .save(&rec(
            "app",
            "A",
            "d1",
            &[],
            vec![o("ExcessiveSyncWaitingTime", &[], Outcome::True, 0.5)],
        ))
        .unwrap();
    store
        .save(&rec(
            "app",
            "A",
            "d2",
            &[],
            vec![o("ExcessiveSyncWaitingTime", &[], Outcome::True, 0.1)],
        ))
        .unwrap();

    let analysis = analyze(&store);
    let drift = analysis.report.with_code("HL032");
    assert_eq!(drift.len(), 1, "report: {:?}", analysis.report.diagnostics);
    assert_eq!(drift[0].file, "app/d1.record");
    assert!(drift[0].message.contains("ExcessiveSyncWaitingTime"));
    // The lower threshold (from d2) hides nothing and is not flagged.
    assert!(!drift.iter().any(|d| d.file == "app/d2.record"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hl033_directive_dominated_by_foreign_prune() {
    let dir = scratch("hl033");
    let store = ExecutionStore::open(&dir).unwrap();
    // Run g1 harvests a low priority on g; run g2 finds g trivial and
    // prunes its subtree. After a corpus merge the low priority can
    // never fire.
    store
        .save(&rec(
            "app",
            "A",
            "g1",
            &[],
            vec![o("CPUbound", &["/Code/a.c/g"], Outcome::False, 0.05)],
        ))
        .unwrap();
    store
        .save(&rec(
            "app",
            "A",
            "g2",
            &[],
            vec![o("CPUbound", &["/Code/a.c/g"], Outcome::False, 0.001)],
        ))
        .unwrap();

    let analysis = analyze(&store);
    let dominated = analysis.report.with_code("HL033");
    assert_eq!(
        dominated.len(),
        1,
        "report: {:?}",
        analysis.report.diagnostics
    );
    assert_eq!(dominated[0].file, "app/g1.record");
    assert!(dominated[0].message.contains("priority low"));
    // A low priority is dead weight, not a contradiction: no HL030.
    assert!(analysis.report.with_code("HL030").is_empty());
    assert!(analysis.verdicts.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance scenario: a 1k-run synthetic store with all four
/// fixture classes seeded, analyzed cold, warm, and after touching one
/// record.
#[test]
fn thousand_run_store_detects_fixtures_and_reanalyzes_incrementally() {
    let dir = scratch("1k");
    let store = ExecutionStore::open(&dir).unwrap();

    // 1000 bulk runs of one app. Run 0 carries the stale fixture (a
    // resource no later run has); the rest are uniform.
    const BULK: usize = 1000;
    for i in 0..BULK {
        let label = format!("run-{i:04}");
        let r = if i == 0 {
            rec(
                "bulk",
                "A",
                &label,
                &["/Code/old.c", "/Code/old.c/h"],
                vec![o("CPUbound", &["/Code/old.c/h"], Outcome::True, 0.4)],
            )
        } else {
            rec(
                "bulk",
                "A",
                &label,
                &[],
                vec![o("CPUbound", &[], Outcome::True, 0.4)],
            )
        };
        store.save(&r).unwrap();
    }
    // Conflict fixture (HL030).
    store
        .save(&rec(
            "confl",
            "A",
            "c1",
            &[],
            vec![o("CPUbound", &["/Code/a.c/f"], Outcome::False, 0.001)],
        ))
        .unwrap();
    store
        .save(&rec(
            "confl",
            "A",
            "c2",
            &[],
            vec![o("CPUbound", &["/Code/a.c/f"], Outcome::True, 0.4)],
        ))
        .unwrap();
    // Drift fixture (HL032).
    store
        .save(&rec(
            "drift",
            "A",
            "d1",
            &[],
            vec![o("ExcessiveSyncWaitingTime", &[], Outcome::True, 0.5)],
        ))
        .unwrap();
    store
        .save(&rec(
            "drift",
            "A",
            "d2",
            &[],
            vec![o("ExcessiveSyncWaitingTime", &[], Outcome::True, 0.1)],
        ))
        .unwrap();
    // Dominance fixture (HL033).
    store
        .save(&rec(
            "dom",
            "A",
            "g1",
            &[],
            vec![o("CPUbound", &["/Code/a.c/g"], Outcome::False, 0.05)],
        ))
        .unwrap();
    store
        .save(&rec(
            "dom",
            "A",
            "g2",
            &[],
            vec![o("CPUbound", &["/Code/a.c/g"], Outcome::False, 0.001)],
        ))
        .unwrap();

    let total = BULK + 6;

    // Cold: every record is lowered.
    let cold = analyze(&store);
    assert_eq!(cold.records, total);
    assert_eq!(cold.cache_misses, total);
    assert_eq!(cold.cache_hits, 0);
    for code in ["HL030", "HL031", "HL032", "HL033"] {
        assert!(
            !cold.report.with_code(code).is_empty(),
            "{code} fixture not detected"
        );
    }

    // Warm: every record comes from the sidecar, findings identical.
    let warm = analyze(&store);
    assert_eq!(warm.records, total);
    assert_eq!(warm.cache_hits, total);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.report.diagnostics, cold.report.diagnostics);

    // Touch exactly one record: only it is re-lowered.
    store
        .save(&rec(
            "bulk",
            "A",
            "run-0500",
            &[],
            vec![o("CPUbound", &[], Outcome::True, 0.41)],
        ))
        .unwrap();
    let incremental = analyze(&store);
    assert_eq!(incremental.records, total);
    assert_eq!(incremental.cache_misses, 1);
    assert_eq!(incremental.cache_hits, total - 1);
    assert_eq!(incremental.report.diagnostics, cold.report.diagnostics);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hl034_abandoned_checkpoint_surfaces_in_corpus_analysis() {
    let dir = scratch("hl034");
    let store = ExecutionStore::open(&dir).unwrap();
    store
        .save(&rec(
            "app",
            "A",
            "r1",
            &[],
            vec![o("CPUbound", &[], Outcome::False, 0.01)],
        ))
        .unwrap();
    // A checkpoint whose session never completed — crash debris nothing
    // resumed. The analyzer reports it alongside the cross-run passes.
    store
        .save_artifact(
            "app",
            "crashed",
            "ckpt",
            "histpc-ckpt v1\nat_us 5\ndigest 1\n",
        )
        .unwrap();

    let analysis = analyze(&store);
    let hits = analysis.report.with_code("HL034");
    assert_eq!(hits.len(), 1, "report: {:?}", analysis.report.diagnostics);
    assert!(hits[0].message.contains("app/crashed.ckpt"));
    let _ = std::fs::remove_dir_all(&dir);
}
