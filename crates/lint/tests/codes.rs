//! One triggering fixture and one clean fixture per diagnostic code.

use histpc_consultant::{NodeOutcome, Outcome};
use histpc_history::ExecutionRecord;
use histpc_lint::{ArtifactKind, Linter, Severity};
use histpc_resources::ResourceName;
use histpc_sim::SimTime;

fn n(s: &str) -> ResourceName {
    ResourceName::parse(s).unwrap()
}

fn lint_dirs(text: &str) -> histpc_lint::LintReport {
    Linter::new().directives(text, "test.dirs").run()
}

fn lint_maps(text: &str) -> histpc_lint::LintReport {
    Linter::new().mappings(text, "test.maps").run()
}

/// A small recorded run over the paper's Poisson-solver resource names.
fn sample_record() -> ExecutionRecord {
    ExecutionRecord {
        app_name: "poisson".into(),
        app_version: "A".into(),
        label: "a1".into(),
        resources: vec![
            n("/Code"),
            n("/Code/oned.f"),
            n("/Code/oned.f/main"),
            n("/Code/diff.f"),
            n("/Code/diff.f/diff"),
            n("/Machine"),
            n("/Machine/node01"),
            n("/Process"),
            n("/Process/p1"),
            n("/SyncObject"),
        ],
        outcomes: vec![NodeOutcome {
            hypothesis: "CPUbound".into(),
            focus: histpc_resources::Focus::whole_program([
                "Code",
                "Machine",
                "Process",
                "SyncObject",
            ]),
            outcome: Outcome::True,
            first_true_at: Some(SimTime(1)),
            concluded_at: Some(SimTime(1)),
            last_value: 0.5,
            samples: 8,
        }],
        thresholds_used: vec![],
        end_time: SimTime(10),
        pairs_tested: 1,
        unreachable: vec![],
        saturated: vec![],
    }
}

#[test]
fn hl001_directive_syntax() {
    let r = lint_dirs("frobnicate all the things\n");
    assert_eq!(r.with_code("HL001").len(), 1);
    assert!(r.has_errors());

    let r = lint_dirs("prune CPUbound gadget /Code\n");
    let d = &r.with_code("HL001")[0].clone();
    // The span points at the bad target-kind token.
    assert_eq!(d.span.unwrap().col_start, 16);

    assert!(lint_dirs("prune CPUbound resource /Code/oned.f\n").is_clean());
}

#[test]
fn hl001_suggests_directive_kind() {
    let r = lint_dirs("prun CPUbound resource /Code\n");
    let d = &r.with_code("HL001")[0].clone();
    assert_eq!(d.suggestion.as_deref(), Some("did you mean `prune`?"));
}

#[test]
fn hl002_unknown_hypothesis() {
    let r = lint_dirs("prune CPUBound resource /SyncObject\n");
    let d = &r.with_code("HL002")[0].clone();
    assert!(d.is_error());
    assert_eq!(d.suggestion.as_deref(), Some("did you mean `CPUbound`?"));
    // The caret points at the hypothesis token (column 7 on the line).
    assert_eq!(d.span.unwrap().col_start, 7);

    assert!(lint_dirs("prune CPUbound resource /SyncObject\n").is_clean());
    // `*` prunes name no hypothesis and cannot trigger HL002.
    assert!(lint_dirs("prune * resource /SyncObject\n").is_clean());
}

#[test]
fn hl003_threshold_out_of_range() {
    for bad in [
        "threshold CPUbound 1.5\n",
        "threshold CPUbound 0\n",
        "threshold CPUbound -0.1\n",
    ] {
        let r = lint_dirs(bad);
        assert_eq!(r.with_code("HL003").len(), 1, "missed {bad:?}");
        assert!(r.has_errors());
    }
    assert!(lint_dirs("threshold CPUbound 0.3\n").is_clean());
    assert!(lint_dirs("threshold CPUbound 1.0\n").is_clean());
}

#[test]
fn hl004_duplicate_and_override() {
    // Exact duplicate.
    let r = lint_dirs("prune * resource /SyncObject\nprune * resource /SyncObject\n");
    let d = &r.with_code("HL004")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.unwrap().line, 2);
    assert!(d.message.contains("line 1"));

    // A re-defined threshold silently overrides the earlier one.
    let r = lint_dirs("threshold CPUbound 0.3\nthreshold CPUbound 0.4\n");
    assert_eq!(r.with_code("HL004").len(), 1);

    // A re-defined priority likewise.
    let r = lint_dirs(
        "priority high CPUbound </Code/oned.f,/Machine,/Process,/SyncObject>\n\
         priority low CPUbound </Code/oned.f,/Machine,/Process,/SyncObject>\n",
    );
    assert_eq!(r.with_code("HL004").len(), 1);

    // Different hypotheses: no conflict.
    let r = lint_dirs("threshold CPUbound 0.3\nthreshold ExcessiveIOBlockingTime 0.3\n");
    assert!(r.is_clean());
}

#[test]
fn hl005_pair_prune_shadowed() {
    let r = lint_dirs(
        "prune CPUbound resource /Code/oned.f\n\
         prune CPUbound pair </Code/oned.f/main,/Machine,/Process,/SyncObject>\n",
    );
    let d = &r.with_code("HL005")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.unwrap().line, 2);
    assert!(d.message.contains("/Code/oned.f"));

    // A wildcard subtree prune shadows a hypothesis-scoped pair prune too.
    let r = lint_dirs(
        "prune * resource /Code/oned.f\n\
         prune CPUbound pair </Code/oned.f,/Machine,/Process,/SyncObject>\n",
    );
    assert_eq!(r.with_code("HL005").len(), 1);

    // A hypothesis-scoped subtree prune does NOT shadow a wildcard pair
    // prune (the pair prune still matters for other hypotheses).
    let r = lint_dirs(
        "prune CPUbound resource /Code/oned.f\n\
         prune * pair </Code/oned.f,/Machine,/Process,/SyncObject>\n",
    );
    assert!(r.with_code("HL005").is_empty());

    // Unrelated subtree: clean.
    let r = lint_dirs(
        "prune CPUbound resource /Code/diff.f\n\
         prune CPUbound pair </Code/oned.f,/Machine,/Process,/SyncObject>\n",
    );
    assert!(r.is_clean());
}

#[test]
fn hl006_high_priority_on_pruned_focus() {
    let r = lint_dirs(
        "prune CPUbound resource /Code/oned.f\n\
         priority high CPUbound </Code/oned.f/main,/Machine,/Process,/SyncObject>\n",
    );
    let d = &r.with_code("HL006")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("prune wins"));

    // Low priority on a pruned focus is the normal extracted-file shape.
    let r = lint_dirs(
        "prune CPUbound pair </Code/oned.f,/Machine,/Process,/SyncObject>\n\
         priority low CPUbound </Code/oned.f,/Machine,/Process,/SyncObject>\n",
    );
    assert!(r.with_code("HL006").is_empty());

    // High priority on an unpruned focus: clean.
    let r = lint_dirs(
        "prune CPUbound resource /Code/diff.f\n\
         priority high CPUbound </Code/oned.f,/Machine,/Process,/SyncObject>\n",
    );
    assert!(r.with_code("HL006").is_empty());
}

#[test]
fn hl007_malformed_focus_and_resource() {
    let r = lint_dirs("prune CPUbound resource notaname\n");
    assert_eq!(r.with_code("HL007").len(), 1);

    let r = lint_dirs("priority high CPUbound </Code/oned.f\n");
    let d = &r.with_code("HL007")[0].clone();
    assert!(d.is_error());
    // The caret covers the focus text, not the whole line.
    assert_eq!(d.span.unwrap().col_start, 24);

    assert!(
        lint_dirs("priority high CPUbound </Code/oned.f,/Machine,/Process,/SyncObject>\n")
            .is_clean()
    );
}

#[test]
fn hl010_mapping_syntax() {
    for bad in [
        "map /Code/x\n",
        "remap /Code/x /Code/y\n",
        "map Code/x /Code/y\n",
    ] {
        let r = lint_maps(bad);
        assert_eq!(r.with_code("HL010").len(), 1, "missed {bad:?}");
        assert!(r.has_errors());
    }
    assert!(lint_maps("map /Code/x /Code/y\n").is_clean());
}

#[test]
fn hl011_cross_hierarchy_map() {
    let r = lint_maps("map /Code/x /Machine/y\n");
    let d = &r.with_code("HL011")[0].clone();
    assert!(d.is_error());
    assert!(d.message.contains("crosses hierarchies"));
    assert!(lint_maps("map /Machine/node01 /Machine/node09\n").is_clean());
}

#[test]
fn hl012_non_injective_map() {
    let r = lint_maps("map /Code/a.f /Code/z.f\nmap /Code/b.f /Code/z.f\n");
    let d = &r.with_code("HL012")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.unwrap().line, 2);
    assert!(lint_maps("map /Code/a.f /Code/y.f\nmap /Code/b.f /Code/z.f\n").is_clean());
}

#[test]
fn hl013_chained_map() {
    let r = lint_maps("map /Code/a.f /Code/b.f\nmap /Code/b.f /Code/c.f\n");
    let d = &r.with_code("HL013")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.unwrap().line, 1);
    assert_eq!(
        d.suggestion.as_deref(),
        Some("write `map /Code/a.f /Code/c.f` directly")
    );
    // Independent maps: clean.
    assert!(lint_maps("map /Code/a.f /Code/b.f\nmap /Code/c.f /Code/d.f\n").is_clean());
}

#[test]
fn hl014_cyclic_map() {
    let r = lint_maps("map /Code/a.f /Code/b.f\nmap /Code/b.f /Code/a.f\n");
    let cycles = r.with_code("HL014");
    assert_eq!(cycles.len(), 1, "a cycle is reported exactly once");
    assert!(cycles[0].is_error());
    assert_eq!(cycles[0].span.unwrap().line, 1);

    // A three-cycle is also caught.
    let r =
        lint_maps("map /Code/a.f /Code/b.f\nmap /Code/b.f /Code/c.f\nmap /Code/c.f /Code/a.f\n");
    assert_eq!(r.with_code("HL014").len(), 1);
    // Cycle members are not additionally reported as chains.
    assert!(r.with_code("HL013").is_empty());
}

#[test]
fn hl015_unused_map_source() {
    let dirs = "prune CPUbound resource /Code/oned.f\n";
    let r = Linter::new()
        .directives(dirs, "test.dirs")
        .mappings("map /Code/sweep.f /Code/nbsweep.f\n", "test.maps")
        .run();
    let d = &r.with_code("HL015")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.file, "test.maps");

    // A source that prefixes a directive resource is used.
    let r = Linter::new()
        .directives(dirs, "test.dirs")
        .mappings("map /Code/oned.f /Code/onednb.f\n", "test.maps")
        .run();
    assert!(r.is_clean());

    // Without directives the check cannot run and stays silent.
    assert!(lint_maps("map /Code/sweep.f /Code/nbsweep.f\n").is_clean());
}

#[test]
fn hl016_duplicate_map_source() {
    let r = lint_maps("map /Code/a.f /Code/b.f\nmap /Code/a.f /Code/c.f\n");
    let d = &r.with_code("HL016")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.span.unwrap().line, 2);
    assert!(d.message.contains("never applied"));
}

#[test]
fn hl020_dangling_resource() {
    let rec = sample_record();
    // A resource that never existed in the run.
    let r = Linter::new()
        .directives("prune CPUbound resource /Code/ghost.f\n", "test.dirs")
        .against(&rec)
        .run();
    let d = &r.with_code("HL020")[0].clone();
    assert!(d.is_error());
    assert!(d.message.contains("poisson/a1"));

    // Dangling only *after* mapping: the source exists, the target does not.
    let r = Linter::new()
        .directives("prune CPUbound resource /Code/oned.f\n", "test.dirs")
        .mappings("map /Code/oned.f /Code/onednb.f\n", "test.maps")
        .against(&rec)
        .run();
    let d = &r.with_code("HL020")[0].clone();
    assert!(d.message.contains("/Code/onednb.f"));

    // Everything present: clean.
    let r = Linter::new()
        .directives(
            "prune CPUbound resource /Code/diff.f\n\
             priority high CPUbound </Code/oned.f/main,/Machine,/Process,/SyncObject>\n\
             threshold CPUbound 0.3\n",
            "test.dirs",
        )
        .against(&rec)
        .run();
    assert!(r.is_clean());
}

#[test]
fn hl020_suggests_close_resource() {
    let rec = sample_record();
    let r = Linter::new()
        .directives("prune CPUbound resource /Code/oned.f/mian\n", "test.dirs")
        .against(&rec)
        .run();
    let d = &r.with_code("HL020")[0].clone();
    assert_eq!(
        d.suggestion.as_deref(),
        Some("did you mean `/Code/oned.f/main`?")
    );
}

#[test]
fn hl021_directive_on_unreachable_resource() {
    let mut rec = sample_record();
    rec.unreachable.push(n("/Machine/node01"));
    let r = Linter::new()
        .directives("prune CPUbound resource /Machine/node01\n", "test.dirs")
        .against(&rec)
        .run();
    let d = &r.with_code("HL021")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("died during run `poisson/a1`"));

    // Dead only *after* mapping is still caught.
    let r = Linter::new()
        .directives("prune CPUbound resource /Machine/node09\n", "test.dirs")
        .mappings("map /Machine/node09 /Machine/node01\n", "test.maps")
        .against(&rec)
        .run();
    assert_eq!(r.with_code("HL021").len(), 1);

    // A directive on a live resource of the same run: clean.
    let r = Linter::new()
        .directives("prune CPUbound resource /Process/p1\n", "test.dirs")
        .against(&rec)
        .run();
    assert!(r.with_code("HL021").is_empty());

    // Healthy record (nothing unreachable): the check stays silent.
    let r = Linter::new()
        .directives("prune CPUbound resource /Machine/node01\n", "test.dirs")
        .against(&sample_record())
        .run();
    assert!(r.with_code("HL021").is_empty());
}

#[test]
fn hl026_directive_on_saturated_resource() {
    let mut rec = sample_record();
    rec.saturated.push(n("/Process/p1"));
    let r = Linter::new()
        .directives("prune CPUbound resource /Process/p1\n", "test.dirs")
        .against(&rec)
        .run();
    let d = &r.with_code("HL026")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d
        .message
        .contains("saturated under overload during run `poisson/a1`"));
    // Saturated is distinct from unreachable: HL021 stays silent.
    assert!(r.with_code("HL021").is_empty());

    // Saturated only *after* mapping is still caught.
    let r = Linter::new()
        .directives("prune CPUbound resource /Process/p9\n", "test.dirs")
        .mappings("map /Process/p9 /Process/p1\n", "test.maps")
        .against(&rec)
        .run();
    assert_eq!(r.with_code("HL026").len(), 1);

    // A directive on an unloaded resource of the same run: clean.
    let r = Linter::new()
        .directives("prune CPUbound resource /Machine/node01\n", "test.dirs")
        .against(&rec)
        .run();
    assert!(r.with_code("HL026").is_empty());

    // Unloaded record (nothing saturated): the check stays silent.
    let r = Linter::new()
        .directives("prune CPUbound resource /Process/p1\n", "test.dirs")
        .against(&sample_record())
        .run();
    assert!(r.with_code("HL026").is_empty());
}

#[test]
fn hl022_threshold_from_starved_conclusion() {
    let mut rec = sample_record();
    rec.outcomes[0].samples = 1; // starved anchor
    let r = Linter::new()
        .directives("threshold CPUbound 0.3\n", "test.dirs")
        .against(&rec)
        .run();
    let d = &r.with_code("HL022")[0].clone();
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("only 1 sample"));

    // Well-observed anchor: clean.
    let r = Linter::new()
        .directives("threshold CPUbound 0.3\n", "test.dirs")
        .against(&sample_record())
        .run();
    assert!(r.with_code("HL022").is_empty());

    // A hypothesis with no true outcomes in the run: nothing to anchor,
    // nothing to warn about.
    let r = Linter::new()
        .directives("threshold ExcessiveIOBlockingTime 0.3\n", "test.dirs")
        .against(&rec)
        .run();
    assert!(r.with_code("HL022").is_empty());
}

#[test]
fn artifact_kind_detection() {
    assert_eq!(
        ArtifactKind::detect("# c\nmap /Code/a /Code/b\n"),
        ArtifactKind::Mappings
    );
    assert_eq!(
        ArtifactKind::detect("prune * resource /Code\n"),
        ArtifactKind::Directives
    );
    assert_eq!(ArtifactKind::detect(""), ArtifactKind::Directives);
}

#[test]
fn report_is_sorted_and_counts() {
    let r = lint_dirs(
        "threshold CPUbound 1.5\n\
         prune CPUBound resource /SyncObject\n\
         prune * resource /SyncObject\n\
         prune * resource /SyncObject\n",
    );
    assert_eq!(r.error_count(), 2); // HL003 + HL002
    assert_eq!(r.warning_count(), 1); // HL004
    let lines: Vec<usize> = r.diagnostics.iter().map(|d| d.span.unwrap().line).collect();
    let mut sorted = lines.clone();
    sorted.sort();
    assert_eq!(lines, sorted);
}

#[test]
fn rendering_quotes_source_with_carets() {
    let linter = Linter::new().directives("prune CPUBound resource /SyncObject\n", "ex.dirs");
    let report = linter.run();
    let out = report.render(&linter.sources());
    assert!(out.contains("error[HL002]: unknown hypothesis `CPUBound`"));
    assert!(out.contains("--> ex.dirs:1:7"));
    assert!(out.contains("1 | prune CPUBound resource /SyncObject"));
    assert!(out.contains("^^^^^^^^"));
    assert!(out.contains("= help: did you mean `CPUbound`?"));
}

#[test]
fn summary_counts() {
    let r = lint_dirs(
        "threshold CPUbound 1.5\nprune * resource /SyncObject\nprune * resource /SyncObject\n",
    );
    assert_eq!(
        histpc_lint::summary(&r.diagnostics).as_deref(),
        Some("1 error; 1 warning")
    );
    assert_eq!(histpc_lint::summary(&[]), None);
}

// ---------------------------------------------------------------------
// Store integrity codes (HL023–HL025), via Linter::store()
// ---------------------------------------------------------------------

/// A pid far above any default `pid_max`, so it is never alive.
const DEAD_PID: u32 = 999_999_999;

fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-lint-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded_store(tag: &str) -> histpc_history::ExecutionStore {
    let store = histpc_history::ExecutionStore::open(store_dir(tag)).unwrap();
    store.save(&sample_record()).unwrap();
    store
}

#[test]
fn hl023_record_checksum_mismatch() {
    let store = seeded_store("hl023");
    let path = store.root().join("poisson").join("a1.record");
    let text = std::fs::read_to_string(&path).unwrap();
    // Tear the record behind the store's back: checksum no longer holds.
    std::fs::write(&path, &text[..text.len() - 4]).unwrap();
    let r = Linter::new().store(store.root()).run();
    let hits = r.with_code("HL023");
    assert!(!hits.is_empty(), "diags: {:?}", r.diagnostics);
    assert!(hits.iter().all(|d| d.severity == Severity::Error));
    assert!(r.has_errors());

    // Clean store: no findings at all.
    let clean = seeded_store("hl023-clean");
    let r = Linter::new().store(clean.root()).run();
    assert!(r.is_clean(), "diags: {:?}", r.diagnostics);
}

#[test]
fn hl024_stale_lock_and_unclean_shutdown() {
    let store = seeded_store("hl024");
    // Evidence of a crashed writer: stale lock + stray temp file.
    std::fs::write(
        store.root().join("LOCK"),
        format!("histpc-lock v1\npid {DEAD_PID}\n"),
    )
    .unwrap();
    std::fs::write(store.root().join("poisson").join("x.record.tmp"), "half").unwrap();
    let r = Linter::new().store(store.root()).run();
    let hits = r.with_code("HL024");
    assert_eq!(hits.len(), 2, "diags: {:?}", r.diagnostics);
    assert!(hits.iter().all(|d| d.severity == Severity::Warning));
    assert!(!r.has_errors());

    // Reopening the store recovers; the warnings disappear.
    let reopened = histpc_history::ExecutionStore::open(store.root()).unwrap();
    let r = Linter::new().store(reopened.root()).run();
    assert!(
        r.with_code("HL024").is_empty(),
        "diags: {:?}",
        r.diagnostics
    );
}

#[test]
fn hl025_legacy_layout_and_drift() {
    // A v0 loose-file store: manifest missing.
    let dir = store_dir("hl025");
    let app = dir.join("poisson");
    std::fs::create_dir_all(&app).unwrap();
    std::fs::write(
        app.join("a1.record"),
        histpc_history::format::write_record(&sample_record()),
    )
    .unwrap();
    let r = Linter::new().store(&dir).run();
    let hits = r.with_code("HL025");
    assert_eq!(hits.len(), 1, "diags: {:?}", r.diagnostics);
    assert!(hits[0].message.contains("v0"));

    // Migrating upgrades it; a file added behind the store's back then
    // shows up as index drift.
    let store = histpc_history::ExecutionStore::open(&dir).unwrap();
    store.migrate().unwrap();
    assert!(Linter::new().store(&dir).run().is_clean());
    std::fs::write(app.join("a1.shg"), "out of band\n").unwrap();
    let r = Linter::new().store(&dir).run();
    assert_eq!(r.with_code("HL025").len(), 1, "diags: {:?}", r.diagnostics);
}

#[test]
fn hl034_abandoned_session_checkpoint() {
    let store = seeded_store("hl034");
    let ckpt = "histpc-ckpt v1\nat_us 5\ndigest 1\n";
    // A checkpoint whose session completed (a1 has a record) is benign:
    // it just lost the race with its own cleanup.
    store.save_artifact("poisson", "a1", "ckpt", ckpt).unwrap();
    let r = Linter::new().store(store.root()).run();
    assert!(
        r.with_code("HL034").is_empty(),
        "diags: {:?}",
        r.diagnostics
    );

    // A checkpoint with no record: the session crashed and nothing ever
    // resumed it.
    store
        .save_artifact("poisson", "ghost", "ckpt", ckpt)
        .unwrap();
    let r = Linter::new().store(store.root()).run();
    let hits = r.with_code("HL034");
    assert_eq!(hits.len(), 1, "diags: {:?}", r.diagnostics);
    assert_eq!(hits[0].severity, Severity::Warning);
    assert!(hits[0].message.contains("poisson/ghost.ckpt"));
    assert!(hits[0]
        .suggestion
        .as_deref()
        .unwrap_or_default()
        .contains("resume"));

    // Deleting the orphan clears the finding.
    assert!(store.delete_artifact("poisson", "ghost", "ckpt").unwrap());
    let r = Linter::new().store(store.root()).run();
    assert!(
        r.with_code("HL034").is_empty(),
        "diags: {:?}",
        r.diagnostics
    );
}

#[test]
fn hl035_orphaned_daemon_lease() {
    use histpc_history::lease::{self, Lease};

    let store = seeded_store("hl035");
    let root = store.root().to_path_buf();

    // A lease whose session has a checkpoint is re-adoptable: a
    // restarting daemon resumes it, so there is nothing to warn about.
    let ckpt = "histpc-ckpt v1\nat_us 5\ndigest 1\n";
    store.save_artifact("poisson", "a1", "ckpt", ckpt).unwrap();
    lease::write_lease(
        &root,
        &Lease {
            tenant: "team-a".into(),
            app: "poisson".into(),
            label: "a1".into(),
            epoch: 1,
            state: "active".into(),
            spec: String::new(),
        },
    )
    .unwrap();
    let r = Linter::new().store(&root).run();
    assert!(
        r.with_code("HL035").is_empty(),
        "diags: {:?}",
        r.diagnostics
    );

    // A lease with no checkpoint cannot be re-adopted; a damaged lease
    // file names nothing at all. Both are HL035.
    lease::write_lease(
        &root,
        &Lease {
            tenant: "team-b".into(),
            app: "poisson".into(),
            label: "ghost".into(),
            epoch: 1,
            state: "active".into(),
            spec: String::new(),
        },
    )
    .unwrap();
    std::fs::write(
        root.join(lease::LEASE_DIR).join("torn.lease"),
        "histpc-frame v1 99 deadbeef\ntruncated",
    )
    .unwrap();
    let r = Linter::new().store(&root).run();
    let hits = r.with_code("HL035");
    assert_eq!(hits.len(), 2, "diags: {:?}", r.diagnostics);
    assert!(hits.iter().all(|h| h.severity == Severity::Warning));
    assert!(
        hits.iter().any(|h| h.message.contains("poisson/ghost")),
        "hits: {hits:?}"
    );
    assert!(
        hits.iter().any(|h| h.message.contains("damaged")),
        "hits: {hits:?}"
    );
    assert!(hits[0]
        .suggestion
        .as_deref()
        .unwrap_or_default()
        .contains("daemon"));

    // Clearing the debris clears the findings.
    assert!(lease::remove_lease(&root, "team-b", "ghost").unwrap());
    std::fs::remove_file(root.join(lease::LEASE_DIR).join("torn.lease")).unwrap();
    let r = Linter::new().store(&root).run();
    assert!(
        r.with_code("HL035").is_empty(),
        "diags: {:?}",
        r.diagnostics
    );
}
