//! rustc-style rendering of diagnostics, with source lines and carets.

use histpc_resources::diag::Diagnostic;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Source text of the files being linted, so rendered diagnostics can
/// quote the offending line under a caret.
#[derive(Debug, Default, Clone)]
pub struct SourceCache {
    files: HashMap<String, Vec<String>>,
}

impl SourceCache {
    /// An empty cache; diagnostics render without quoted source lines.
    pub fn new() -> SourceCache {
        SourceCache::default()
    }

    /// Registers the full text of one file.
    pub fn insert(&mut self, file: impl Into<String>, text: &str) {
        self.files
            .insert(file.into(), text.lines().map(str::to_string).collect());
    }

    /// The 1-based `lineno` of `file`, if known.
    fn line(&self, file: &str, lineno: usize) -> Option<&str> {
        self.files
            .get(file)
            .and_then(|lines| lines.get(lineno.checked_sub(1)?))
            .map(String::as_str)
    }
}

/// Renders one diagnostic in rustc style:
///
/// ```text
/// error[HL002]: unknown hypothesis `CPUBound`
///   --> poisson.dirs:3:7
///    |
///  3 | prune CPUBound resource /SyncObject
///    |       ^^^^^^^^
///    = help: did you mean `CPUbound`?
/// ```
pub fn render(d: &Diagnostic, sources: &SourceCache) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
    if let Some(span) = d.span {
        let _ = writeln!(out, "  --> {}:{}:{}", d.file, span.line, span.col_start);
        if let Some(line) = sources.line(&d.file, span.line) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(out, " {pad} |");
            let _ = writeln!(out, " {gutter} | {line}");
            let indent = " ".repeat(span.col_start.saturating_sub(1));
            let carets = "^".repeat(span.width());
            let _ = writeln!(out, " {pad} | {indent}{carets}");
        }
    } else {
        let _ = writeln!(out, "  --> {}", d.file);
    }
    if let Some(help) = &d.suggestion {
        let _ = writeln!(out, "   = help: {help}");
    }
    out
}

/// Renders a list of diagnostics, blank-line separated.
pub fn render_all(diags: &[Diagnostic], sources: &SourceCache) -> String {
    diags
        .iter()
        .map(|d| render(d, sources))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The `N errors; M warnings` trailer, or `None` when there is nothing
/// to say.
pub fn summary(diags: &[Diagnostic]) -> Option<String> {
    let errors = diags.iter().filter(|d| d.is_error()).count();
    let warnings = diags.len() - errors;
    let mut parts = Vec::new();
    if errors > 0 {
        parts.push(format!(
            "{errors} error{}",
            if errors == 1 { "" } else { "s" }
        ));
    }
    if warnings > 0 {
        parts.push(format!(
            "{warnings} warning{}",
            if warnings == 1 { "" } else { "s" }
        ));
    }
    (!parts.is_empty()).then(|| parts.join("; "))
}
