//! The corpus analyzer: multi-pass, cross-run analysis of a whole
//! execution store.
//!
//! Per-file lints ([`Linter`](crate::Linter)) judge one artifact at a
//! time; they cannot see that run 3 of a store prunes the very pair run
//! 41 marks a high-priority bottleneck. The corpus analyzer can. It
//! runs in two stages:
//!
//! 1. **Lowering** — every stored record is distilled into a
//!    [`RecordFacts`] table ([`crate::facts`]). Extraction is cached in
//!    the store's `FACTS` sidecar keyed on the record's FNV-64 payload
//!    checksum (the same one the store manifest tracks), so a
//!    re-analysis only lowers records whose bytes changed —
//!    O(changed records), not O(store).
//! 2. **Passes** — cross-run analyses over the fact tables
//!    ([`crate::passes`]): directive conflicts (`HL030`), staleness
//!    (`HL031`), threshold drift (`HL032`), and prune dominance
//!    (`HL033`). A final store scan reports abandoned session
//!    checkpoints (`HL034`) — `ckpt` artifacts whose session never
//!    completed, left behind by a crash nothing ever resumed.
//!
//! The conflict pass additionally returns [`ConflictVerdicts`], which
//! `Session::harvest` consults to down-rank contradictory directives
//! before they ever reach the consultant. A corpus with no conflicts
//! yields an empty verdict set and a bit-identical harvest.

use crate::facts::{self, RecordFacts};
use crate::passes;
use crate::LintReport;
use histpc_consultant::directive::{PriorityLevel, SearchDirectives};
use histpc_history::factcache::FactCache;
use histpc_history::manifest::{Manifest, ManifestState};
use histpc_history::{ExecutionStore, ExtractionOptions, StoreError};
use histpc_resources::intern::Interner;
use histpc_resources::Focus;
use std::collections::BTreeSet;

/// Tuning knobs for a corpus analysis.
#[derive(Debug, Clone)]
pub struct CorpusOptions {
    /// How many of an application's most recent runs define the "live"
    /// resource set for the staleness pass (`HL031`).
    pub recent_window: usize,
    /// How facts derive each record's harvested directives. Changing
    /// these invalidates cached facts (the options fingerprint is part
    /// of the cache key).
    pub extraction: ExtractionOptions,
}

impl Default for CorpusOptions {
    fn default() -> CorpusOptions {
        CorpusOptions {
            recent_window: 20,
            extraction: ExtractionOptions::priorities_and_safe_prunes().with_thresholds(),
        }
    }
}

/// One (hypothesis, focus) pair the corpus both prunes and prioritizes
/// (`HL030`), scoped to the application and version the conflict was
/// found in.
#[derive(Debug, Clone, PartialEq)]
pub struct ConflictVerdict {
    /// Application the conflicting runs belong to.
    pub app: String,
    /// Version group the conflict was found in.
    pub version: String,
    /// Hypothesis of the contradicted pair.
    pub hypothesis: String,
    /// Focus of the contradicted pair.
    pub focus: Focus,
    /// Label of the run whose extraction harvests the prune side.
    /// Harvest feeds this into the trust ledger: a run whose guidance
    /// is chronically contradicted decays toward quarantine.
    pub prune_source: String,
    /// Label of the run whose extraction harvests the high priority.
    pub priority_source: String,
}

/// The conflict pass's output: every contradicted pair, ready for
/// harvest-time down-ranking.
#[derive(Debug, Clone, Default)]
pub struct ConflictVerdicts {
    verdicts: Vec<ConflictVerdict>,
}

impl ConflictVerdicts {
    /// No conflicts anywhere.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Number of contradicted pairs.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// All verdicts, in deterministic (app, version, pair) order.
    pub fn iter(&self) -> impl Iterator<Item = &ConflictVerdict> {
        self.verdicts.iter()
    }

    pub(crate) fn push(&mut self, v: ConflictVerdict) {
        self.verdicts.push(v);
    }

    /// Down-ranks a harvested directive set against the verdicts that
    /// apply to `(app, version)`: high priorities on a contradicted
    /// pair and prunes removing one are dropped (the corpus cannot
    /// honestly claim either side), everything else is preserved in
    /// order. Returns the vetted set and how many directives were
    /// dropped. With no applicable verdicts the result is a plain
    /// clone — byte-identical `to_text()`.
    pub fn down_rank(
        &self,
        directives: &SearchDirectives,
        app: &str,
        version: &str,
    ) -> (SearchDirectives, usize) {
        let applicable: Vec<&ConflictVerdict> = self
            .verdicts
            .iter()
            .filter(|v| v.app == app && v.version == version)
            .collect();
        if applicable.is_empty() {
            return (directives.clone(), 0);
        }
        let mut out = SearchDirectives::none();
        let mut dropped = 0;
        for p in &directives.prunes {
            if applicable
                .iter()
                .any(|v| p.matches(&v.hypothesis, &v.focus))
            {
                dropped += 1;
            } else {
                out.add_prune(p.clone());
            }
        }
        for p in &directives.priorities {
            let contradicted = p.level == PriorityLevel::High
                && applicable
                    .iter()
                    .any(|v| v.hypothesis == p.hypothesis && v.focus == p.focus);
            if contradicted {
                dropped += 1;
            } else {
                out.add_priority(p.clone());
            }
        }
        for t in &directives.thresholds {
            out.add_threshold(t.clone());
        }
        (out, dropped)
    }
}

/// The result of one corpus analysis.
#[derive(Debug, Clone, Default)]
pub struct CorpusAnalysis {
    /// Every finding, sorted and deduplicated like any lint report.
    pub report: LintReport,
    /// Contradicted pairs for harvest-time down-ranking.
    pub verdicts: ConflictVerdicts,
    /// Records analyzed (damaged records are skipped; `fsck` owns those).
    pub records: usize,
    /// Records whose facts came from the sidecar cache.
    pub cache_hits: usize,
    /// Records that were lowered from scratch this analysis.
    pub cache_misses: usize,
}

/// Drives lowering + passes over one execution store.
#[derive(Debug)]
pub struct CorpusAnalyzer<'a> {
    store: &'a ExecutionStore,
    opts: CorpusOptions,
}

impl<'a> CorpusAnalyzer<'a> {
    /// An analyzer with default options.
    pub fn new(store: &'a ExecutionStore) -> CorpusAnalyzer<'a> {
        CorpusAnalyzer::with_options(store, CorpusOptions::default())
    }

    /// An analyzer with explicit options.
    pub fn with_options(store: &'a ExecutionStore, opts: CorpusOptions) -> CorpusAnalyzer<'a> {
        CorpusAnalyzer { store, opts }
    }

    /// Runs the full analysis: load (or lower) facts for every record,
    /// refresh the sidecar cache, then run every pass. Only storewide
    /// listing failures error out; an individual record that fails to
    /// load is skipped (it is `fsck`'s job to report it, and one torn
    /// record must not hide corpus findings about the rest).
    pub fn analyze(&self) -> Result<CorpusAnalysis, StoreError> {
        let mut cache = FactCache::load(self.store.root());
        let mut interner = Interner::new();
        let fingerprint = options_fingerprint(&self.opts.extraction);
        let mut all: Vec<RecordFacts> = Vec::new();
        let mut live = BTreeSet::new();
        let mut hits = 0usize;
        let mut misses = 0usize;
        // One manifest read for the whole corpus; per-record
        // `record_checksum` would re-parse it per call. Records the
        // manifest misses (v0 stores, drift) fall back to hashing.
        let manifest = match Manifest::load(self.store.root()) {
            Ok(ManifestState::Loaded(m)) => Some(m),
            _ => None,
        };

        for app in self.store.applications()? {
            for (seq, label) in self.store.labels(&app)?.iter().enumerate() {
                let rel = format!("{app}/{label}.record");
                let indexed = manifest.as_ref().and_then(|m| m.lookup(&rel));
                let checksum = match indexed {
                    Some(c) => c,
                    None => match self.store.record_checksum(&app, label) {
                        Ok(c) => c,
                        Err(_) => continue,
                    },
                };
                let key = checksum ^ fingerprint;
                let cached = cache
                    .lookup(&rel, key)
                    .and_then(|payload| RecordFacts::parse(payload).ok());
                let mut facts = match cached {
                    Some(f) => {
                        hits += 1;
                        f
                    }
                    None => {
                        let Ok(rec) = self.store.load(&app, label) else {
                            continue;
                        };
                        let f = facts::lower(&rec, &mut interner, &self.opts.extraction);
                        cache.insert(&rel, key, f.to_text());
                        misses += 1;
                        f
                    }
                };
                facts.app = app.clone();
                facts.label = label.clone();
                facts.seq = seq;
                facts.checksum = checksum;
                live.insert(rel);
                all.push(facts);
            }
        }

        // Refresh the sidecar: drop entries for deleted records, then
        // persist best-effort (a read-only store must still analyze).
        cache.retain_paths(&live);
        let _ = cache.save(self.store.root());

        let mut diags = Vec::new();
        let verdicts = passes::conflicts::check(&all, &mut diags);
        passes::stale::check(&all, self.opts.recent_window, &mut diags);
        passes::drift::check(&all, &mut diags);
        passes::dominance::check(&all, &mut diags);
        diags.extend(crate::checks::check_abandoned_checkpoints(
            self.store.root(),
        ));
        diags.extend(crate::checks::check_orphaned_leases(self.store.root()));

        Ok(CorpusAnalysis {
            report: LintReport::from(diags),
            verdicts,
            records: all.len(),
            cache_hits: hits,
            cache_misses: misses,
        })
    }
}

/// A fingerprint of the extraction options folded into every cache key,
/// so analyses with different derivation settings never share cached
/// facts. The `Debug` form is hashed — any representational change
/// costs at most one cold re-derivation.
fn options_fingerprint(opts: &ExtractionOptions) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for b in format!("{}|{opts:?}", facts::FACTS_HEADER).bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}
