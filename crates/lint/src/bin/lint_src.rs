//! `lint-src`: a dependency-free source audit for determinism hazards.
//!
//! The deterministic core of this workspace (sim, consultant, history,
//! instr, faults, resources) must produce bit-identical records from
//! identical inputs — that property underwrites every baseline
//! comparison, proptest, and bench invariant in the repo. This bin
//! scans `crates/*/src` for the three hazard classes that have bitten
//! (or nearly bitten) before:
//!
//! * **DA001 — wall-clock reads** (`Instant::now`, `SystemTime::now`)
//!   in a deterministic crate: simulated time is the only clock allowed
//!   to influence behaviour there.
//! * **DA002 — `.unwrap()` in collector/search paths**
//!   (`crates/instr/src`, `crates/consultant/src/search.rs`): these run
//!   under fault injection, where a panic turns a modeled failure into
//!   a tool crash; use `expect` with an invariant message or handle the
//!   error.
//! * **DA003 — `HashMap` in record-serialization modules**: iteration
//!   order would leak into persisted bytes; use `BTreeMap` or sort.
//!
//! Test modules (everything at and after the first `#[cfg(test)]`) are
//! exempt. A finding is suppressed by `det-audit: allow(...)` on the
//! same line or in the comment block immediately above it.
//!
//! The audit is textual on purpose: no syn, no cargo metadata, no
//! network — it must run in the leanest CI container and finish in
//! milliseconds. Exit status 0 = clean, 1 = findings, 2 = usage error.

use std::path::{Path, PathBuf};

/// Crates whose `src/` must stay free of wall-clock reads.
const DETERMINISTIC_CRATES: &[&str] = &[
    "resources",
    "sim",
    "consultant",
    "history",
    "instr",
    "faults",
];

/// Path fragments (relative to a crate's `src/`) whose files run under
/// fault injection and must not `.unwrap()`.
const NO_UNWRAP_PATHS: &[(&str, &str)] = &[("instr", ""), ("consultant", "search.rs")];

/// Files whose output is persisted byte-for-byte; `HashMap` iteration
/// order must not reach them.
const SERIALIZATION_FILES: &[(&str, &str)] = &[
    ("history", "format.rs"),
    ("history", "record.rs"),
    ("history", "manifest.rs"),
    ("history", "factcache.rs"),
    ("lint", "facts.rs"),
];

struct Finding {
    code: &'static str,
    file: String,
    line: usize,
    message: String,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => match find_workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("lint-src: cannot find workspace root (run from inside the repo)");
                std::process::exit(2);
            }
        },
        [path] => PathBuf::from(path),
        _ => {
            eprintln!("usage: lint-src [WORKSPACE_ROOT]");
            std::process::exit(2);
        }
    };
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        eprintln!("lint-src: {} has no crates/ directory", root.display());
        std::process::exit(2);
    }

    let mut findings = Vec::new();
    let mut files = Vec::new();
    let mut crate_names: Vec<String> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                crate_names.push(entry.file_name().to_string_lossy().to_string());
            }
        }
    }
    crate_names.sort();
    for krate in &crate_names {
        collect_rs_files(&crates_dir.join(krate).join("src"), &mut files);
    }
    files.sort();

    let mut scanned = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        scanned += 1;
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        audit_file(&rel, &text, &mut findings);
    }

    for f in &findings {
        println!(
            "det-audit[{}]: {}:{}: {}",
            f.code, f.file, f.line, f.message
        );
    }
    if findings.is_empty() {
        println!("det-audit: clean ({scanned} files scanned)");
    } else {
        println!(
            "det-audit: {} finding(s) in {scanned} scanned files",
            findings.len()
        );
        std::process::exit(1);
    }
}

/// Walk up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The crate name and in-crate path of a `crates/<name>/src/...` file.
fn crate_and_subpath(rel: &str) -> Option<(&str, &str)> {
    let rest = rel.strip_prefix("crates/")?;
    let (krate, rest) = rest.split_once('/')?;
    let sub = rest.strip_prefix("src/")?;
    Some((krate, sub))
}

fn audit_file(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    let Some((krate, sub)) = crate_and_subpath(rel) else {
        return;
    };
    let check_clock = DETERMINISTIC_CRATES.contains(&krate);
    let check_unwrap = NO_UNWRAP_PATHS
        .iter()
        .any(|(k, p)| *k == krate && (p.is_empty() || sub == *p));
    let check_hashmap = SERIALIZATION_FILES
        .iter()
        .any(|(k, p)| *k == krate && sub == *p);
    if !(check_clock || check_unwrap || check_hashmap) {
        return;
    }

    let lines: Vec<&str> = text.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        let trimmed = raw.trim_start();
        // Everything from the first test module on is exempt: the
        // workspace convention keeps `#[cfg(test)] mod tests` at the
        // bottom of a file.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if trimmed.starts_with("//") || allowed(&lines, idx) {
            continue;
        }
        let lineno = idx + 1;
        if check_clock && (raw.contains("Instant::now") || raw.contains("SystemTime::now")) {
            findings.push(Finding {
                code: "DA001",
                file: rel.to_string(),
                line: lineno,
                message: "wall-clock read in a deterministic crate; \
                          use simulated time or suppress with `det-audit: allow(wall-clock)`"
                    .into(),
            });
        }
        if check_unwrap && raw.contains(".unwrap()") {
            findings.push(Finding {
                code: "DA002",
                file: rel.to_string(),
                line: lineno,
                message: "`.unwrap()` on a fault-injected path; \
                          use `expect` with an invariant message or handle the error"
                    .into(),
            });
        }
        if check_hashmap && raw.contains("HashMap") {
            findings.push(Finding {
                code: "DA003",
                file: rel.to_string(),
                line: lineno,
                message: "HashMap in a record-serialization module; \
                          iteration order must not reach persisted bytes — use BTreeMap"
                    .into(),
            });
        }
    }
}

/// True when the line itself, or the contiguous `//` comment block
/// directly above it, carries a `det-audit: allow` marker.
fn allowed(lines: &[&str], idx: usize) -> bool {
    if lines[idx].contains("det-audit: allow") {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if !t.starts_with("//") {
            return false;
        }
        if t.contains("det-audit: allow") {
            return true;
        }
    }
    false
}
