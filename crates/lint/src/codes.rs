//! The registry of stable diagnostic codes.
//!
//! Every `HLxxx` code any histpc tool can emit is declared here, with
//! its default severity and a one-line summary. The registry is what
//! makes codes *stable*: the JSON report format maps code strings back
//! through [`lookup`] to the canonical `&'static str`, and the
//! doc-sync test fails the build when a code exists here (or appears in
//! the sources) without a matching DESIGN.md registry entry — so a new
//! code cannot ship undocumented.

use crate::Severity;

/// One registered diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `"HL030"`. Never reused or renumbered.
    pub code: &'static str,
    /// The severity this code is emitted with.
    pub severity: Severity,
    /// One-line summary, matching the tables in the crate doc and
    /// DESIGN.md.
    pub summary: &'static str,
}

/// Every registered code, in numeric order. Gaps (`HL008`–`HL009`,
/// `HL017`–`HL019`, `HL027`–`HL029`) are unassigned, not retired.
pub const ALL: &[CodeInfo] = &[
    code("HL001", Severity::Error, "directive syntax error"),
    code("HL002", Severity::Error, "unknown hypothesis"),
    code("HL003", Severity::Error, "threshold outside (0, 1]"),
    code(
        "HL004",
        Severity::Warning,
        "duplicate or overriding directive",
    ),
    code(
        "HL005",
        Severity::Warning,
        "pair prune shadowed by a subtree prune",
    ),
    code(
        "HL006",
        Severity::Warning,
        "high priority on a pruned focus",
    ),
    code("HL007", Severity::Error, "malformed focus or resource name"),
    code("HL010", Severity::Error, "mapping syntax error"),
    code("HL011", Severity::Error, "mapping crosses hierarchies"),
    code("HL012", Severity::Warning, "non-injective mapping"),
    code(
        "HL013",
        Severity::Warning,
        "chained mapping (single-pass application)",
    ),
    code("HL014", Severity::Error, "cyclic mapping"),
    code(
        "HL015",
        Severity::Warning,
        "map source unused by the directives",
    ),
    code("HL016", Severity::Warning, "duplicate map source"),
    code(
        "HL020",
        Severity::Error,
        "resource absent from the run linted against",
    ),
    code(
        "HL021",
        Severity::Warning,
        "directive references a resource the run marked unreachable",
    ),
    code(
        "HL022",
        Severity::Warning,
        "threshold anchored by an under-observed (starved) conclusion",
    ),
    code(
        "HL023",
        Severity::Error,
        "store record fails its checksum frame or does not parse",
    ),
    code(
        "HL024",
        Severity::Warning,
        "store shows unclean-shutdown evidence (stale lock, torn journal, stray files)",
    ),
    code(
        "HL025",
        Severity::Warning,
        "store uses the legacy v0 layout or its manifest index drifted",
    ),
    code(
        "HL026",
        Severity::Warning,
        "directive references a resource the run marked saturated (overload shed)",
    ),
    code(
        "HL030",
        Severity::Warning,
        "corpus conflict: one run prunes the pair another run marks high priority",
    ),
    code(
        "HL031",
        Severity::Warning,
        "stale directive: resource absent from the application's last-N runs",
    ),
    code(
        "HL032",
        Severity::Warning,
        "threshold drift: harvested threshold would hide a bottleneck observed in another run",
    ),
    code(
        "HL033",
        Severity::Warning,
        "dominated directive: another run's subtree prune makes it unreachable",
    ),
    code(
        "HL034",
        Severity::Warning,
        "abandoned session checkpoint: ckpt artifact with no matching completed record",
    ),
    code(
        "HL035",
        Severity::Warning,
        "orphaned daemon lease: lease with no checkpoint to re-adopt the session from",
    ),
    code(
        "HL036",
        Severity::Warning,
        "quarantined source: trust fell below the floor, its directives are withheld",
    ),
    code(
        "HL037",
        Severity::Warning,
        "revoked directive: a failed shadow audit convicted it, harvests drop it",
    ),
];

const fn code(code: &'static str, severity: Severity, summary: &'static str) -> CodeInfo {
    CodeInfo {
        code,
        severity,
        summary,
    }
}

/// Looks up a code by its string form, returning the registry entry
/// (whose `code` field is the canonical `&'static str`).
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    ALL.iter().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_resolvable() {
        for pair in ALL.windows(2) {
            assert!(pair[0].code < pair[1].code, "registry must stay sorted");
        }
        for c in ALL {
            assert_eq!(lookup(c.code).map(|i| i.code), Some(c.code));
        }
        assert!(lookup("HL999").is_none());
    }
}
