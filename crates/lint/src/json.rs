//! Machine-readable lint reports: the `histpc-lint-report/v1` schema.
//!
//! `histpc lint --format json` emits one JSON object per invocation so
//! CI annotators and the daemon-to-be can consume findings without
//! scraping rendered text. The schema is stable — fields are only ever
//! added, never renamed or removed:
//!
//! ```json
//! {
//!   "schema": "histpc-lint-report/v1",
//!   "errors": 1,
//!   "warnings": 2,
//!   "diagnostics": [
//!     {
//!       "code": "HL002",
//!       "severity": "error",
//!       "file": "app.dirs",
//!       "line": 3,
//!       "col_start": 7,
//!       "col_end": 15,
//!       "message": "unknown hypothesis `CPUBound`",
//!       "suggestion": "did you mean `CPUbound`?"
//!     }
//!   ]
//! }
//! ```
//!
//! Span-less diagnostics omit `line`/`col_start`/`col_end`;
//! suggestion-less ones omit `suggestion`. The workspace is
//! dependency-free, so the (de)serializer is hand-rolled — the format
//! is a single flat schema, not general JSON interchange, but the
//! parser is a complete little JSON reader so foreign field order and
//! whitespace are accepted.

use crate::{codes, Diagnostic, LintReport, Severity, Span};

/// The schema identifier in every report.
pub const REPORT_SCHEMA: &str = "histpc-lint-report/v1";

/// Serializes a report to the `histpc-lint-report/v1` JSON text.
pub fn report_to_json(report: &LintReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": {},\n", quote(REPORT_SCHEMA)));
    out.push_str(&format!("  \"errors\": {},\n", report.error_count()));
    out.push_str(&format!("  \"warnings\": {},\n", report.warning_count()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"code\": {}, ", quote(d.code)));
        out.push_str(&format!("\"severity\": {}, ", quote(d.severity.label())));
        out.push_str(&format!("\"file\": {}", quote(&d.file)));
        if let Some(span) = d.span {
            out.push_str(&format!(
                ", \"line\": {}, \"col_start\": {}, \"col_end\": {}",
                span.line, span.col_start, span.col_end
            ));
        }
        out.push_str(&format!(", \"message\": {}", quote(&d.message)));
        if let Some(s) = &d.suggestion {
            out.push_str(&format!(", \"suggestion\": {}", quote(s)));
        }
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parses a `histpc-lint-report/v1` JSON text back into a report.
/// Unknown codes and severities are rejected — a report that cannot
/// round-trip through the registry is not a histpc report.
pub fn report_from_json(text: &str) -> Result<LintReport, String> {
    let value = Parser { text, pos: 0 }.parse()?;
    let obj = value.as_object().ok_or("report must be a JSON object")?;
    match find(obj, "schema") {
        Some(JsonValue::String(s)) if s == REPORT_SCHEMA => {}
        Some(JsonValue::String(s)) => return Err(format!("unknown schema {s:?}")),
        _ => return Err("missing schema field".into()),
    }
    let Some(JsonValue::Array(items)) = find(obj, "diagnostics") else {
        return Err("missing diagnostics array".into());
    };
    let mut diagnostics = Vec::new();
    for item in items {
        let d = item.as_object().ok_or("diagnostic must be an object")?;
        let code_str = get_string(d, "code")?;
        let info = codes::lookup(&code_str)
            .ok_or_else(|| format!("unregistered diagnostic code {code_str:?}"))?;
        let severity = match get_string(d, "severity")?.as_str() {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "note" => Severity::Note,
            other => return Err(format!("unknown severity {other:?}")),
        };
        let span = match (find(d, "line"), find(d, "col_start"), find(d, "col_end")) {
            (None, None, None) => None,
            (Some(l), Some(s), Some(e)) => Some(Span::new(
                as_usize(l, "line")?,
                as_usize(s, "col_start")?,
                as_usize(e, "col_end")?,
            )),
            _ => return Err("partial span: need all of line/col_start/col_end".into()),
        };
        let suggestion = match find(d, "suggestion") {
            Some(JsonValue::String(s)) => Some(s.clone()),
            None | Some(JsonValue::Null) => None,
            Some(_) => return Err("suggestion must be a string".into()),
        };
        diagnostics.push(Diagnostic {
            code: info.code,
            severity,
            file: get_string(d, "file")?,
            span,
            message: get_string(d, "message")?,
            suggestion,
        });
    }
    Ok(LintReport::from(diagnostics))
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
}

fn find<'a>(obj: &'a [(String, JsonValue)], key: &str) -> Option<&'a JsonValue> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_string(obj: &[(String, JsonValue)], key: &str) -> Result<String, String> {
    match find(obj, key) {
        Some(JsonValue::String(s)) => Ok(s.clone()),
        _ => Err(format!("missing or non-string field {key:?}")),
    }
}

fn as_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    match v {
        JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
        _ => Err(format!("field {key:?} must be a non-negative integer")),
    }
}

struct Parser<'a> {
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn parse(mut self) -> Result<JsonValue, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.text.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.text.as_bytes().get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.text[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.text[start..self.pos]
            .parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.text[self.pos..];
            let mut chars = rest.chars();
            match chars.next() {
                None => return Err("unterminated string".into()),
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    let esc = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or("unterminated escape")?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex = self
                                .text
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(cp).ok_or("bad \\u codepoint")?);
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> LintReport {
        LintReport::from(vec![
            Diagnostic {
                code: "HL002",
                severity: Severity::Error,
                file: "app.dirs".into(),
                span: Some(Span::new(3, 7, 15)),
                message: "unknown hypothesis `CPUBound`".into(),
                suggestion: Some("did you mean `CPUbound`?".into()),
            },
            Diagnostic {
                code: "HL031",
                severity: Severity::Warning,
                file: "app/r1.record".into(),
                span: None,
                message: "a \"quoted\" name,\n\ta control byte \u{1}".into(),
                suggestion: None,
            },
        ])
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let json = report_to_json(&report);
        let back = report_from_json(&json).unwrap();
        assert_eq!(back.diagnostics, report.diagnostics);
        assert_eq!(back.error_count(), report.error_count());
        assert_eq!(back.warning_count(), report.warning_count());
    }

    #[test]
    fn serialization_is_stable() {
        let report = sample_report();
        let json = report_to_json(&report);
        assert_eq!(json, report_to_json(&report));
        // A round trip re-serializes to the identical bytes.
        let back = report_from_json(&json).unwrap();
        assert_eq!(report_to_json(&back), json);
    }

    #[test]
    fn empty_report_round_trips() {
        let json = report_to_json(&LintReport::default());
        assert!(json.contains("\"diagnostics\": []"));
        assert!(report_from_json(&json).unwrap().is_clean());
    }

    #[test]
    fn parser_accepts_foreign_field_order_and_whitespace() {
        let text = r#"
            { "diagnostics": [ { "message": "m", "file": "f.dirs",
                                 "severity": "note", "code": "HL004" } ],
              "schema": "histpc-lint-report/v1" }
        "#;
        let report = report_from_json(text).unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].code, "HL004");
        assert_eq!(report.diagnostics[0].severity, Severity::Note);
    }

    #[test]
    fn bad_reports_are_rejected() {
        let wrong_schema = r#"{"schema": "histpc-lint-report/v2", "diagnostics": []}"#;
        assert!(report_from_json(wrong_schema)
            .unwrap_err()
            .contains("schema"));

        let unknown_code = r#"{"schema": "histpc-lint-report/v1", "diagnostics":
            [{"code": "HL999", "severity": "error", "file": "f", "message": "m"}]}"#;
        assert!(report_from_json(unknown_code)
            .unwrap_err()
            .contains("HL999"));

        let partial_span = r#"{"schema": "histpc-lint-report/v1", "diagnostics":
            [{"code": "HL001", "severity": "error", "file": "f", "line": 3, "message": "m"}]}"#;
        assert!(report_from_json(partial_span).unwrap_err().contains("span"));

        assert!(report_from_json("{").is_err());
        assert!(report_from_json("{} trailing").is_err());
    }
}
