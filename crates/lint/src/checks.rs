//! The individual lint checks.
//!
//! Every check emits [`Diagnostic`]s with a stable code; codes are never
//! reused or renumbered. Parse-level codes (`HL001`, `HL003`, `HL007`,
//! `HL010`, `HL011`) are produced by the span-aware parsers in
//! `histpc-consultant` and `histpc-history`; this module hosts the
//! semantic checks that run over successfully parsed artifacts.

use histpc_consultant::directive::{Directive, LocatedDirective};
use histpc_consultant::{Prune, PruneTarget};
use histpc_history::mapping::LocatedMap;
use histpc_history::{ExecutionRecord, MappingSet, MIN_THRESHOLD_SAMPLES};
use histpc_resources::diag::{did_you_mean, Diagnostic, Span};
use histpc_resources::{Focus, ResourceName};
use std::collections::HashMap;
use std::collections::HashSet;

/// Semantic checks over a parsed directive file: unknown hypotheses
/// (`HL002`), duplicate and overriding directives (`HL004`), pair prunes
/// shadowed by subtree prunes (`HL005`), and high priorities on pruned
/// foci (`HL006`).
pub fn check_directives(
    located: &[LocatedDirective],
    hypothesis_names: &[String],
    file: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_unknown_hypotheses(located, hypothesis_names, file, &mut out);
    check_duplicates(located, file, &mut out);
    check_shadowed_pair_prunes(located, file, &mut out);
    check_high_priority_on_pruned(located, file, &mut out);
    out
}

/// HL002: every named hypothesis must exist in the registry.
fn check_unknown_hypotheses(
    located: &[LocatedDirective],
    hypothesis_names: &[String],
    file: &str,
    out: &mut Vec<Diagnostic>,
) {
    for l in located {
        let Some(hyp) = l.directive.hypothesis() else {
            continue; // `*` prunes reference no specific hypothesis
        };
        if hypothesis_names.iter().any(|n| n == hyp) {
            continue;
        }
        let mut d = Diagnostic::error("HL002", format!("unknown hypothesis `{hyp}`"))
            .with_file(file)
            .with_span(l.hypothesis_span);
        if let Some(s) = did_you_mean(hyp, hypothesis_names.iter().map(String::as_str)) {
            d = d.with_suggestion(format!("did you mean `{s}`?"));
        }
        out.push(d);
    }
}

/// HL004: exact duplicates, and priority/threshold re-definitions that
/// silently override an earlier line (last one wins at load time).
fn check_duplicates(located: &[LocatedDirective], file: &str, out: &mut Vec<Diagnostic>) {
    for (i, l) in located.iter().enumerate() {
        for prev in &located[..i] {
            if prev.directive == l.directive {
                out.push(
                    Diagnostic::warning(
                        "HL004",
                        format!("duplicate directive; identical to line {}", prev.span.line),
                    )
                    .with_file(file)
                    .with_span(l.span)
                    .with_suggestion("remove one of the two"),
                );
                break;
            }
            if let Some(what) = overrides(&prev.directive, &l.directive) {
                out.push(
                    Diagnostic::warning(
                        "HL004",
                        format!(
                            "this {what} silently overrides the one on line {}",
                            prev.span.line
                        ),
                    )
                    .with_file(file)
                    .with_span(l.span)
                    .with_suggestion("the last directive wins; remove the one you don't mean"),
                );
                break;
            }
        }
    }
}

/// True if `later` replaces `earlier` when both are loaded, with a short
/// description of what kind of directive is being overridden.
fn overrides(earlier: &Directive, later: &Directive) -> Option<&'static str> {
    match (earlier, later) {
        (Directive::Priority(a), Directive::Priority(b))
            if a.hypothesis == b.hypothesis && a.focus == b.focus =>
        {
            Some("priority")
        }
        (Directive::Threshold(a), Directive::Threshold(b)) if a.hypothesis == b.hypothesis => {
            Some("threshold")
        }
        _ => None,
    }
}

/// HL005: a pair prune whose focus already falls inside a pruned subtree
/// is dead weight — the subtree prune removes the pair on its own.
fn check_shadowed_pair_prunes(located: &[LocatedDirective], file: &str, out: &mut Vec<Diagnostic>) {
    let subtree_prunes: Vec<(&Prune, &LocatedDirective)> = located
        .iter()
        .filter_map(|l| match &l.directive {
            Directive::Prune(
                p @ Prune {
                    target: PruneTarget::Resource(_),
                    ..
                },
            ) => Some((p, l)),
            _ => None,
        })
        .collect();
    for l in located {
        let Directive::Prune(
            pair @ Prune {
                target: PruneTarget::Pair(focus),
                ..
            },
        ) = &l.directive
        else {
            continue;
        };
        let shadow = subtree_prunes.iter().find(|(sub, _)| {
            hypothesis_scope_covers(&sub.hypothesis, &pair.hypothesis)
                && resource_prune_matches(sub, focus)
        });
        if let Some((sub, sub_loc)) = shadow {
            let PruneTarget::Resource(r) = &sub.target else {
                unreachable!()
            };
            out.push(
                Diagnostic::warning(
                    "HL005",
                    format!(
                        "pair prune is shadowed by the subtree prune of `{r}` on line {}",
                        sub_loc.span.line
                    ),
                )
                .with_file(file)
                .with_span(l.span)
                .with_suggestion("the subtree prune already removes this pair; drop this line"),
            );
        }
    }
}

/// True if a prune scoped to `outer` applies to everything a prune scoped
/// to `inner` applies to (`None` = all hypotheses).
fn hypothesis_scope_covers(outer: &Option<String>, inner: &Option<String>) -> bool {
    match (outer, inner) {
        (None, _) => true,
        (Some(_), None) => false,
        (Some(a), Some(b)) => a == b,
    }
}

/// True if `sub`'s resource subtree matches `focus`, ignoring hypothesis.
fn resource_prune_matches(sub: &Prune, focus: &Focus) -> bool {
    Prune {
        hypothesis: None,
        target: sub.target.clone(),
    }
    .matches("", focus)
}

/// HL006: `priority high` on a pair that a prune in the same file removes
/// is contradictory — the prune wins and the pair is never instrumented.
fn check_high_priority_on_pruned(
    located: &[LocatedDirective],
    file: &str,
    out: &mut Vec<Diagnostic>,
) {
    let prunes: Vec<&Prune> = located
        .iter()
        .filter_map(|l| match &l.directive {
            Directive::Prune(p) => Some(p),
            _ => None,
        })
        .collect();
    for l in located {
        let Directive::Priority(p) = &l.directive else {
            continue;
        };
        if p.level != histpc_consultant::PriorityLevel::High {
            continue; // extracted files legitimately carry Low + prune
        }
        if let Some(prune) = prunes.iter().find(|q| q.matches(&p.hypothesis, &p.focus)) {
            let what = match &prune.target {
                PruneTarget::Resource(r) => format!("the subtree prune of `{r}`"),
                PruneTarget::Pair(_) => "an exact pair prune".to_string(),
            };
            out.push(
                Diagnostic::warning(
                    "HL006",
                    format!("high priority on a focus removed by {what}; the prune wins"),
                )
                .with_file(file)
                .with_span(l.span)
                .with_suggestion("drop either the priority or the prune"),
            );
        }
    }
}

/// Semantic checks over a parsed mapping file: non-injective maps
/// (`HL012`), chained maps (`HL013`), cyclic maps (`HL014`), and duplicate
/// sources (`HL016`).
pub fn check_mappings(maps: &[LocatedMap], file: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_duplicate_sources(maps, file, &mut out);
    check_non_injective(maps, file, &mut out);
    check_chains_and_cycles(maps, file, &mut out);
    out
}

/// HL016: the same source mapped twice; only the first mapping is applied.
fn check_duplicate_sources(maps: &[LocatedMap], file: &str, out: &mut Vec<Diagnostic>) {
    for (i, m) in maps.iter().enumerate() {
        if let Some(prev) = maps[..i].iter().find(|p| p.from == m.from) {
            out.push(
                Diagnostic::warning(
                    "HL016",
                    format!(
                        "`{}` is already mapped on line {}; this mapping is never applied",
                        m.from, prev.span.line
                    ),
                )
                .with_file(file)
                .with_span(m.span)
                .with_suggestion("remove this line or change its source"),
            );
        }
    }
}

/// HL012: two different sources mapped to the same target merge two
/// resources that were distinct in the original run.
fn check_non_injective(maps: &[LocatedMap], file: &str, out: &mut Vec<Diagnostic>) {
    for (i, m) in maps.iter().enumerate() {
        if let Some(prev) = maps[..i].iter().find(|p| p.to == m.to && p.from != m.from) {
            out.push(
                Diagnostic::warning(
                    "HL012",
                    format!(
                        "non-injective mapping: `{}` and `{}` (line {}) both map to `{}`",
                        m.from, prev.from, prev.span.line, m.to
                    ),
                )
                .with_file(file)
                .with_span(m.span)
                .with_suggestion(
                    "distinct resources from the old run will be indistinguishable; \
                     map them to distinct targets",
                ),
            );
        }
    }
}

/// HL013/HL014: mappings are applied in a single pass, so `map a b` +
/// `map b c` does *not* take `a` to `c` (HL013), and a cycle of maps is
/// almost certainly a mistake (HL014, error).
fn check_chains_and_cycles(maps: &[LocatedMap], file: &str, out: &mut Vec<Diagnostic>) {
    // First mapping per source is the one `apply_to_name` uses.
    let mut index: HashMap<&ResourceName, &LocatedMap> = HashMap::new();
    for m in maps {
        index.entry(&m.from).or_insert(m);
    }
    for m in maps {
        if index.get(&m.from).copied() != Some(m) {
            continue; // duplicate source; already HL016
        }
        if !index.contains_key(&m.to) {
            continue; // chain tail (or no chain at all)
        }
        // Walk the chain to its end, watching for a cycle back to `m`.
        let mut chain = vec![m];
        let mut visited: HashSet<&ResourceName> = HashSet::from([&m.from]);
        let mut cur = &m.to;
        let mut cycle = false;
        while let Some(next) = index.get(cur) {
            if next.from == m.from {
                cycle = true;
                break;
            }
            if !visited.insert(&next.from) {
                break; // a downstream cycle; its own members report it
            }
            chain.push(next);
            cur = &next.to;
        }
        if cycle {
            // Report each cycle once, on its earliest line.
            if chain.iter().all(|c| c.span.line >= m.span.line) {
                let names = chain
                    .iter()
                    .map(|c| format!("`{}`", c.from))
                    .collect::<Vec<_>>()
                    .join(" -> ");
                out.push(
                    Diagnostic::error("HL014", format!("cyclic mapping: {names} -> `{}`", m.from))
                        .with_file(file)
                        .with_span(m.span)
                        .with_suggestion("break the cycle; resources cannot exchange names"),
                );
            }
        } else {
            let final_to = &chain.last().expect("chain starts with m").to;
            out.push(
                Diagnostic::warning(
                    "HL013",
                    format!(
                        "chained mapping: `{}` is itself mapped, but mappings are applied \
                         in one pass, so `{}` stops at `{}`",
                        m.to, m.from, m.to
                    ),
                )
                .with_file(file)
                .with_span(m.span)
                .with_suggestion(format!("write `map {} {}` directly", m.from, final_to)),
            );
        }
    }
}

/// HL015: a mapping whose source prefixes no resource mentioned by the
/// directives it is meant to translate does nothing.
pub fn check_mapping_usage(
    maps: &[LocatedMap],
    directives: &[LocatedDirective],
    file: &str,
) -> Vec<Diagnostic> {
    let mentioned = mentioned_names(directives);
    let mut out = Vec::new();
    for m in maps {
        if mentioned.iter().any(|(n, _)| m.from.is_prefix_of(n)) {
            continue;
        }
        out.push(
            Diagnostic::warning(
                "HL015",
                format!(
                    "map source `{}` never occurs in the directives being mapped",
                    m.from
                ),
            )
            .with_file(file)
            .with_span(m.from_span)
            .with_suggestion("remove the mapping or check the source name for typos"),
        );
    }
    out
}

/// HL020: after mapping, every resource a directive references must exist
/// in the recorded execution it is checked against.
pub fn check_against_record(
    directives: &[LocatedDirective],
    mappings: &MappingSet,
    record: &ExecutionRecord,
    file: &str,
) -> Vec<Diagnostic> {
    let known: HashSet<&ResourceName> = record.resources.iter().collect();
    let displays: Vec<String> = record.resources.iter().map(|r| r.to_string()).collect();
    let mut out = Vec::new();
    for (name, span) in mentioned_names(directives) {
        let mapped = mappings.apply_to_name(&name);
        if known.contains(&mapped) {
            continue;
        }
        let run = format!("{}/{}", record.app_name, record.label);
        let mut d = Diagnostic::error(
            "HL020",
            if mapped == name {
                format!("directive references `{name}`, which does not exist in run `{run}`")
            } else {
                format!(
                    "directive references `{name}`, mapped to `{mapped}`, which does not \
                     exist in run `{run}`"
                )
            },
        )
        .with_file(file)
        .with_span(span);
        if let Some(s) = did_you_mean(&mapped.to_string(), displays.iter().map(String::as_str)) {
            d = d.with_suggestion(format!("did you mean `{s}`?"));
        }
        out.push(d);
    }
    out
}

/// HL021: a directive whose resource (after mapping) died during the run
/// it is checked against. Outcomes recorded under a dead machine or
/// process reflect the failure, not the program, so any directive
/// harvested from them is suspect.
pub fn check_unreachable_references(
    directives: &[LocatedDirective],
    mappings: &MappingSet,
    record: &ExecutionRecord,
    file: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if record.unreachable.is_empty() {
        return out;
    }
    for (name, span) in mentioned_names(directives) {
        let mapped = mappings.apply_to_name(&name);
        if !record.is_unreachable(&mapped) {
            continue;
        }
        out.push(
            Diagnostic::warning(
                "HL021",
                format!(
                    "directive references `{mapped}`, which died during run `{}/{}`",
                    record.app_name, record.label
                ),
            )
            .with_file(file)
            .with_span(span)
            .with_suggestion(
                "conclusions under a dead resource reflect the failure, not the \
                 program; re-harvest from a healthy run or drop this line",
            ),
        );
    }
    out
}

/// HL026: a directive whose resource (after mapping) saturated during
/// the run it is checked against — the admission layer's circuit breaker
/// opened there, shedding requests or data. Outcomes recorded under a
/// saturated resource reflect the tool's overload, not the program, so
/// any directive harvested from them is suspect.
pub fn check_saturated_references(
    directives: &[LocatedDirective],
    mappings: &MappingSet,
    record: &ExecutionRecord,
    file: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if record.saturated.is_empty() {
        return out;
    }
    for (name, span) in mentioned_names(directives) {
        let mapped = mappings.apply_to_name(&name);
        if !record.is_saturated(&mapped) {
            continue;
        }
        out.push(
            Diagnostic::warning(
                "HL026",
                format!(
                    "directive references `{mapped}`, which saturated under overload \
                     during run `{}/{}`",
                    record.app_name, record.label
                ),
            )
            .with_file(file)
            .with_span(span)
            .with_suggestion(
                "conclusions under a saturated resource reflect shed instrumentation, \
                 not the program; re-harvest from an unloaded run or drop this line",
            ),
        );
    }
    out
}

/// HL022: a threshold whose anchoring conclusion — the smallest true
/// magnitude of its hypothesis in the run, which margin-below-minimum
/// derivation builds on — was observed over fewer samples than
/// [`MIN_THRESHOLD_SAMPLES`]. Starved magnitudes from a degraded run are
/// too noisy to set the bar for future runs.
pub fn check_threshold_samples(
    directives: &[LocatedDirective],
    record: &ExecutionRecord,
    file: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for l in directives {
        let Directive::Threshold(t) = &l.directive else {
            continue;
        };
        let anchor = record
            .true_outcomes()
            .filter(|o| o.hypothesis == t.hypothesis)
            .min_by(|a, b| a.last_value.total_cmp(&b.last_value));
        let Some(anchor) = anchor else {
            continue; // nothing in the run this threshold could derive from
        };
        if anchor.samples >= MIN_THRESHOLD_SAMPLES {
            continue;
        }
        out.push(
            Diagnostic::warning(
                "HL022",
                format!(
                    "threshold for `{}` is anchored by a conclusion observed over only \
                     {} sample(s) in run `{}/{}` (minimum {MIN_THRESHOLD_SAMPLES})",
                    t.hypothesis, anchor.samples, record.app_name, record.label
                ),
            )
            .with_file(file)
            .with_span(l.span)
            .with_suggestion(
                "a degraded run's starved magnitudes are noisy; re-harvest the \
                 threshold from a healthier run",
            ),
        );
    }
    out
}

/// Every resource name a directive file references, with the span of the
/// directive value it appears in. Hierarchy-root selections of foci are
/// skipped: they are implicit in every run.
fn mentioned_names(directives: &[LocatedDirective]) -> Vec<(ResourceName, Span)> {
    let mut out = Vec::new();
    for l in directives {
        match &l.directive {
            Directive::Prune(p) => match &p.target {
                PruneTarget::Resource(r) => out.push((r.clone(), l.value_span)),
                PruneTarget::Pair(f) => {
                    out.extend(selections_of(f).map(|s| (s, l.value_span)));
                }
            },
            Directive::Priority(p) => {
                out.extend(selections_of(&p.focus).map(|s| (s, l.value_span)));
            }
            Directive::Threshold(_) => {}
        }
    }
    out
}

/// Non-root selections of a focus.
fn selections_of(f: &Focus) -> impl Iterator<Item = ResourceName> + '_ {
    f.selections().filter(|s| !s.is_root()).cloned()
}

/// HL034: abandoned session checkpoints — a `ckpt` artifact with no
/// matching completed record under the same (application, label). A
/// completed run deletes its checkpoint, so a survivor marks a session
/// that crashed (or stalled and was cancelled) and was never resumed to
/// completion. Read-only: the store is scanned, not opened.
pub fn check_abandoned_checkpoints(root: &std::path::Path) -> Vec<Diagnostic> {
    let Ok(orphans) = histpc_history::store::orphaned_checkpoints_at(root) else {
        return Vec::new();
    };
    orphans
        .into_iter()
        .map(|(app, label)| {
            Diagnostic::warning(
                "HL034",
                format!(
                    "abandoned session checkpoint: {app}/{label}.ckpt has no \
                     matching completed record"
                ),
            )
            .with_file(
                root.join(&app)
                    .join(format!("{label}.ckpt"))
                    .display()
                    .to_string(),
            )
            .with_suggestion(format!(
                "resume the session (`histpc run --store {} --label {label} --resume ...`) \
                 or delete the checkpoint",
                root.display()
            ))
        })
        .collect()
}

/// HL035: orphaned daemon leases — a `histpcd` session lease with no
/// checkpoint to re-adopt the session from (or a damaged lease file).
/// A restarting daemon classifies such sessions abandoned; until one
/// runs, the lease sits in the store recording work that silently went
/// nowhere. Read-only: the store is scanned, not opened.
pub fn check_orphaned_leases(root: &std::path::Path) -> Vec<Diagnostic> {
    let Ok(orphans) = histpc_history::lease::orphaned_leases_at(root) else {
        return Vec::new();
    };
    orphans
        .into_iter()
        .map(|(file, why)| {
            Diagnostic::warning("HL035", format!("orphaned daemon lease: {why}"))
                .with_file(
                    root.join(histpc_history::lease::LEASE_DIR)
                        .join(&file)
                        .display()
                        .to_string(),
                )
                .with_suggestion(
                    "restart the daemon to classify the session abandoned, \
                     or delete the lease file"
                        .to_string(),
                )
        })
        .collect()
}
