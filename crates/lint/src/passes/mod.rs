//! Corpus analysis passes.
//!
//! Each pass is a pure function over the lowered fact tables
//! ([`crate::facts::RecordFacts`]) — no store access, no I/O — pushing
//! [`Diagnostic`](crate::Diagnostic)s into a shared sink. Passes
//! iterate `BTreeMap`-grouped facts so their output order is fully
//! deterministic; the surrounding [`LintReport`](crate::LintReport)
//! sorts and dedupes anyway, but determinism here keeps "first run
//! mentioned wins" choices stable too.
//!
//! | pass | code | finding |
//! |------|-------|---------|
//! | [`conflicts`] | HL030 | one run prunes the pair another run marks high priority |
//! | [`stale`] | HL031 | a directive's resource vanished from the last-N runs |
//! | [`drift`] | HL032 | a harvested threshold would hide a bottleneck seen elsewhere |
//! | [`dominance`] | HL033 | a directive an unrelated run's subtree prune makes unreachable |

pub mod conflicts;
pub mod dominance;
pub mod drift;
pub mod stale;

use histpc_consultant::directive::{PriorityDirective, Prune, PruneTarget};

/// The `prune ...` line a prune would serialize to — the stable text
/// key passes dedupe and report on.
pub(crate) fn prune_line(p: &Prune) -> String {
    let hyp = p.hypothesis.as_deref().unwrap_or("*");
    match &p.target {
        PruneTarget::Resource(r) => format!("prune {hyp} resource {r}"),
        PruneTarget::Pair(f) => format!("prune {hyp} pair {f}"),
    }
}

/// The `priority ...` line a priority directive would serialize to.
pub(crate) fn priority_line(p: &PriorityDirective) -> String {
    format!("priority {} {} {}", p.level.name(), p.hypothesis, p.focus)
}
