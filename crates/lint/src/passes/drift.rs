//! `HL032` — threshold drift: a harvested threshold that would hide a
//! bottleneck another run actually observed.
//!
//! Harvested thresholds sit a safety margin *below* the smallest
//! well-observed bottleneck of their own run — so within one run they
//! can never mask anything. Across runs they can: if run 7 saw sync
//! waiting at 40% (threshold ≈ 36%), but run 12's workload only pushes
//! it to 10%, applying run 7's threshold to a future diagnosis would
//! declare run 12's very real bottleneck "not a problem". This pass
//! compares every run's harvested thresholds against the well-observed
//! (≥ [`MIN_THRESHOLD_SAMPLES`](histpc_history::MIN_THRESHOLD_SAMPLES))
//! true magnitudes of every *other* run of the same application.

use crate::facts::RecordFacts;
use crate::Diagnostic;
use std::collections::BTreeMap;

/// Stable code for a threshold inconsistent with observed magnitudes.
pub const CODE_DRIFT: &str = "HL032";

/// Slack under the threshold before a magnitude counts as hidden, so
/// float noise around an exact boundary never flaps the finding.
const DRIFT_EPSILON: f64 = 1e-9;

/// Runs the pass.
pub fn check(facts: &[RecordFacts], diags: &mut Vec<Diagnostic>) {
    let mut apps: BTreeMap<&str, Vec<&RecordFacts>> = BTreeMap::new();
    for f in facts {
        apps.entry(&f.app).or_default().push(f);
    }
    for (app, runs) in apps {
        for rf in &runs {
            for t in &rf.directives.thresholds {
                // The smallest well-observed magnitude for this
                // hypothesis in any *other* run, with its source run.
                let mut hidden: Option<(f64, &str)> = None;
                for other in &runs {
                    if other.label == rf.label {
                        continue;
                    }
                    if let Some(m) = other.min_well_observed(&t.hypothesis) {
                        if hidden.is_none_or(|(best, _)| m < best) {
                            hidden = Some((m, &other.label));
                        }
                    }
                }
                let Some((magnitude, source)) = hidden else {
                    continue;
                };
                if magnitude >= t.value - DRIFT_EPSILON {
                    continue;
                }
                diags.push(
                    Diagnostic::warning(
                        CODE_DRIFT,
                        format!(
                            "threshold drift: run {} of {app} harvests threshold {} for \
                             {}, but run {source} observed that bottleneck at only \
                             {magnitude} — applying the higher threshold would hide it",
                            rf.label, t.value, t.hypothesis
                        ),
                    )
                    .with_file(rf.rel_path())
                    .with_suggestion(
                        "harvest thresholds from the run with the smallest observed \
                         magnitudes, or combine the runs (`histpc combine`) so the \
                         threshold reflects the whole corpus",
                    ),
                );
            }
        }
    }
}
