//! `HL030` — cross-run directive conflicts.
//!
//! Within one run, extraction is self-consistent: it never emits a high
//! priority on a pair it also prunes. Across runs nothing enforced that
//! until now: run 3 may conclude a function trivial (subtree prune)
//! while run 41 — after a workload change — finds the same function a
//! bottleneck (high priority). A consultant steered by the merged
//! corpus would then prune its own best lead. This pass cross-products
//! the *unique* prunes and high priorities of each `(app, version)`
//! group, reports each contradicted pair once, and records a
//! [`ConflictVerdict`](crate::corpus::ConflictVerdict) so harvesting
//! can down-rank both sides.

use super::{priority_line, prune_line};
use crate::corpus::{ConflictVerdict, ConflictVerdicts};
use crate::facts::RecordFacts;
use crate::Diagnostic;
use histpc_consultant::directive::{PriorityDirective, PriorityLevel, Prune};
use std::collections::BTreeMap;

/// Stable code for a cross-run prune/priority conflict.
pub const CODE_CONFLICT: &str = "HL030";

/// Runs the pass, returning the verdicts for harvest-time vetting.
pub fn check(facts: &[RecordFacts], diags: &mut Vec<Diagnostic>) -> ConflictVerdicts {
    let mut verdicts = ConflictVerdicts::default();
    let mut groups: BTreeMap<(&str, &str), Vec<&RecordFacts>> = BTreeMap::new();
    for f in facts {
        groups.entry((&f.app, &f.version)).or_default().push(f);
    }
    for ((app, version), runs) in groups {
        // Dedupe directives by their serialized line before the cross
        // product: a thousand near-identical runs contribute each
        // distinct directive once, keyed to its first (oldest) run.
        let mut prunes: BTreeMap<String, (&Prune, &RecordFacts)> = BTreeMap::new();
        let mut highs: BTreeMap<String, (&PriorityDirective, &RecordFacts)> = BTreeMap::new();
        for rf in &runs {
            for p in &rf.directives.prunes {
                prunes.entry(prune_line(p)).or_insert((p, rf));
            }
            for p in &rf.directives.priorities {
                if p.level == PriorityLevel::High {
                    highs.entry(priority_line(p)).or_insert((p, rf));
                }
            }
        }
        let mut seen_pairs: BTreeMap<String, ()> = BTreeMap::new();
        for (pri_text, (pri, pri_src)) in &highs {
            for (prune_text, (prune, prune_src)) in &prunes {
                if prune_src.label == pri_src.label {
                    continue; // within-run consistency is extraction's job
                }
                if !prune.matches(&pri.hypothesis, &pri.focus) {
                    continue;
                }
                let pair_key = format!("{} {}", pri.hypothesis, pri.focus);
                if seen_pairs.insert(pair_key, ()).is_some() {
                    continue;
                }
                diags.push(
                    Diagnostic::warning(
                        CODE_CONFLICT,
                        format!(
                            "directive conflict in {app} v{version}: run {} harvests \
                             `{prune_text}` but run {} harvests `{pri_text}` — the corpus \
                             both prunes and prioritizes ({}, {})",
                            prune_src.label, pri_src.label, pri.hypothesis, pri.focus
                        ),
                    )
                    .with_file(pri_src.rel_path())
                    .with_suggestion(
                        "the runs disagree about this pair; harvesting down-ranks both sides \
                         until a re-run or `histpc store delete` of the stale run resolves it",
                    ),
                );
                verdicts.push(ConflictVerdict {
                    app: app.to_string(),
                    version: version.to_string(),
                    hypothesis: pri.hypothesis.clone(),
                    focus: pri.focus.clone(),
                    prune_source: prune_src.label.clone(),
                    priority_source: pri_src.label.clone(),
                });
            }
        }
    }
    verdicts
}
