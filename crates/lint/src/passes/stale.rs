//! `HL031` — stale directives: resources that left the program.
//!
//! Directives outlive the code they were harvested from. When a
//! function is deleted or renamed, every old prune or priority naming
//! it still sits in the corpus, silently matching nothing (or — worse —
//! matching a re-used name). This pass takes the union of the resource
//! sets of each application's last *N* runs as the "live" set and flags
//! any *older* run whose harvested directives name a resource outside
//! it. Runs inside the window are never flagged: their resources are
//! the definition of live.

use crate::facts::RecordFacts;
use crate::Diagnostic;
use histpc_consultant::directive::{PruneTarget, SearchDirectives};
use std::collections::{BTreeMap, BTreeSet};

/// Stable code for a directive naming a vanished resource.
pub const CODE_STALE: &str = "HL031";

/// Runs the pass. `window` is the number of most-recent runs (per
/// application) whose resource union defines liveness.
pub fn check(facts: &[RecordFacts], window: usize, diags: &mut Vec<Diagnostic>) {
    let window = window.max(1);
    let mut apps: BTreeMap<&str, Vec<&RecordFacts>> = BTreeMap::new();
    for f in facts {
        apps.entry(&f.app).or_default().push(f);
    }
    for (app, mut runs) in apps {
        runs.sort_by_key(|f| f.seq);
        if runs.len() <= window {
            continue; // every run is recent; nothing can be stale
        }
        let cutoff = runs.len() - window;
        let live: BTreeSet<&str> = runs[cutoff..]
            .iter()
            .flat_map(|f| f.resources.iter().map(String::as_str))
            .collect();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for rf in &runs[..cutoff] {
            for name in mentioned_resources(&rf.directives) {
                if live.contains(name.as_str()) || !seen.insert(name.clone()) {
                    continue;
                }
                diags.push(
                    Diagnostic::warning(
                        CODE_STALE,
                        format!(
                            "stale directive: resource {name} (harvested from run {} of {app}) \
                             no longer appears in the last {window} runs",
                            rf.label
                        ),
                    )
                    .with_file(rf.rel_path())
                    .with_suggestion(
                        "the resource was removed or renamed since this run; add a `map` entry \
                         for the new name or re-harvest from a recent run",
                    ),
                );
            }
        }
    }
}

/// Every non-root resource name a directive set mentions: subtree-prune
/// targets plus all pair-prune and priority focus selections. Roots
/// (`/Code`, `/Machine`, ...) are structural and always live.
fn mentioned_resources(directives: &SearchDirectives) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for p in &directives.prunes {
        match &p.target {
            PruneTarget::Resource(r) => {
                if !r.is_root() {
                    out.insert(r.to_string());
                }
            }
            PruneTarget::Pair(f) => {
                out.extend(
                    f.selections()
                        .filter(|s| !s.is_root())
                        .map(|s| s.to_string()),
                );
            }
        }
    }
    for p in &directives.priorities {
        out.extend(
            p.focus
                .selections()
                .filter(|s| !s.is_root())
                .map(|s| s.to_string()),
        );
    }
    out
}
