//! `HL033` — dominated directives: ones that can never fire once the
//! corpus is merged.
//!
//! A subtree prune removes a whole region of the Search History Graph
//! from consideration. Any *other* run's directive living strictly
//! inside that region — a low priority, or a narrower pair prune — is
//! dead weight after a corpus merge: the consultant never reaches the
//! focus it names. (A *high* priority under a foreign prune is not
//! dead weight but a genuine contradiction; that is
//! [`conflicts`](super::conflicts)' `HL030`, and this pass leaves it
//! alone.) Within one run the per-file checks `HL005`/`HL006` already
//! cover shadowing; this pass only reports cross-run dominance.

use super::prune_line;
use crate::facts::RecordFacts;
use crate::Diagnostic;
use histpc_consultant::directive::{PriorityLevel, Prune, PruneTarget};
use histpc_resources::Focus;
use std::collections::{BTreeMap, BTreeSet};

/// Stable code for a directive dominated by another run's prune.
pub const CODE_DOMINATED: &str = "HL033";

/// Runs the pass.
pub fn check(facts: &[RecordFacts], diags: &mut Vec<Diagnostic>) {
    let mut groups: BTreeMap<(&str, &str), Vec<&RecordFacts>> = BTreeMap::new();
    for f in facts {
        groups.entry((&f.app, &f.version)).or_default().push(f);
    }
    for ((app, version), runs) in groups {
        // Unique subtree prunes across the group, keyed to their first
        // (oldest) run.
        let mut subtrees: BTreeMap<String, (&Prune, &RecordFacts)> = BTreeMap::new();
        for rf in &runs {
            for p in &rf.directives.prunes {
                if matches!(p.target, PruneTarget::Resource(_)) {
                    subtrees.entry(prune_line(p)).or_insert((p, rf));
                }
            }
        }
        if subtrees.is_empty() {
            continue;
        }
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for rf in &runs {
            for p in &rf.directives.priorities {
                if p.level != PriorityLevel::Low {
                    continue; // High under a prune is HL030's conflict
                }
                let Some((dom_text, dom_src)) =
                    dominating(&subtrees, Some(&p.hypothesis), &p.focus, &rf.label)
                else {
                    continue;
                };
                let line = format!("priority low {} {}", p.hypothesis, p.focus);
                if !seen.insert(format!("{app} {version} {line}")) {
                    continue;
                }
                push_dominated(diags, app, version, rf, &line, dom_text, dom_src);
            }
            for p in &rf.directives.prunes {
                let PruneTarget::Pair(focus) = &p.target else {
                    continue;
                };
                let Some((dom_text, dom_src)) =
                    dominating(&subtrees, p.hypothesis.as_deref(), focus, &rf.label)
                else {
                    continue;
                };
                let line = prune_line(p);
                if !seen.insert(format!("{app} {version} {line}")) {
                    continue;
                }
                push_dominated(diags, app, version, rf, &line, dom_text, dom_src);
            }
        }
    }
}

/// The first subtree prune from a *different* run that makes
/// (`hypothesis`, `focus`) unreachable. A directive scoped to one
/// hypothesis is dominated by a prune covering that hypothesis; a
/// wildcard pair prune is only dominated by a wildcard subtree prune.
fn dominating<'a>(
    subtrees: &'a BTreeMap<String, (&Prune, &'a RecordFacts)>,
    hypothesis: Option<&str>,
    focus: &Focus,
    own_label: &str,
) -> Option<(&'a str, &'a RecordFacts)> {
    for (text, (prune, src)) in subtrees {
        if src.label == own_label {
            continue;
        }
        let covered = match hypothesis {
            Some(h) => prune.matches(h, focus),
            // `Prune::matches` scoping: a wildcard prune matches any
            // hypothesis, so probing with an impossible name checks
            // pure structural coverage.
            None => prune.hypothesis.is_none() && prune.matches("\u{0}", focus),
        };
        if covered {
            return Some((text.as_str(), src));
        }
    }
    None
}

fn push_dominated(
    diags: &mut Vec<Diagnostic>,
    app: &str,
    version: &str,
    rf: &RecordFacts,
    line: &str,
    dom_text: &str,
    dom_src: &RecordFacts,
) {
    diags.push(
        Diagnostic::warning(
            CODE_DOMINATED,
            format!(
                "dominated directive in {app} v{version}: `{line}` from run {} can never \
                 fire — `{dom_text}` from run {} already removes that region of the \
                 search history graph",
                rf.label, dom_src.label
            ),
        )
        .with_file(rf.rel_path())
        .with_suggestion(
            "drop the dominated directive, or delete the pruning run if its conclusion \
             no longer holds",
        ),
    );
}
