//! `histpc-lint`: static validation of directive and mapping artifacts.
//!
//! Search directives and resource mappings are plain text files written by
//! people (or extracted by `histpc harvest`) and applied to later runs —
//! often much later, against a program version whose resources have moved.
//! This crate checks those artifacts *before* they steer a diagnosis:
//!
//! * **Directive files** — unknown hypotheses, duplicate or overriding
//!   directives, pair prunes shadowed by subtree prunes, high priorities
//!   on pruned foci, thresholds outside `(0, 1]`, malformed foci.
//! * **Mapping files** — syntax, cross-hierarchy maps, non-injective
//!   maps, chained and cyclic maps, sources the directives never mention.
//! * **Cross-artifact** — given a recorded execution, directives whose
//!   resources (after mapping) do not exist in that run's hierarchies.
//!
//! Every problem is a [`Diagnostic`] with a stable `HLxxx` code, a
//! severity, and a file/line/column span; [`render`] produces rustc-style
//! output with the offending line quoted under a caret.
//!
//! | code  | severity | meaning |
//! |-------|----------|---------|
//! | HL001 | error    | directive syntax error |
//! | HL002 | error    | unknown hypothesis |
//! | HL003 | error    | threshold outside `(0, 1]` |
//! | HL004 | warning  | duplicate or overriding directive |
//! | HL005 | warning  | pair prune shadowed by a subtree prune |
//! | HL006 | warning  | high priority on a pruned focus |
//! | HL007 | error    | malformed focus or resource name |
//! | HL010 | error    | mapping syntax error |
//! | HL011 | error    | mapping crosses hierarchies |
//! | HL012 | warning  | non-injective mapping |
//! | HL013 | warning  | chained mapping (single-pass application) |
//! | HL014 | error    | cyclic mapping |
//! | HL015 | warning  | map source unused by the directives |
//! | HL016 | warning  | duplicate map source |
//! | HL020 | error    | resource absent from the run linted against |
//! | HL021 | warning  | directive references a resource the run marked unreachable |
//! | HL022 | warning  | threshold anchored by an under-observed (starved) conclusion |
//! | HL023 | error    | store record fails its checksum frame or does not parse |
//! | HL024 | warning  | store shows unclean-shutdown evidence (stale lock, torn journal, stray files) |
//! | HL025 | warning  | store uses the legacy v0 layout or its manifest index drifted |
//! | HL026 | warning  | directive references a resource the run marked saturated (overload shed) |
//! | HL030 | warning  | corpus conflict: one run prunes the pair another run marks high priority |
//! | HL031 | warning  | stale directive: resource absent from the application's last-N runs |
//! | HL032 | warning  | threshold drift: harvested threshold would hide a bottleneck observed in another run |
//! | HL033 | warning  | dominated directive: another run's subtree prune makes it unreachable |
//! | HL034 | warning  | abandoned session checkpoint: ckpt artifact with no matching completed record |
//! | HL035 | warning  | orphaned daemon lease: lease with no checkpoint to re-adopt the session from |
//!
//! `HL030`–`HL033` are emitted by the cross-run [`corpus`] analyzer
//! (`histpc lint corpus <store>`) rather than the per-file [`Linter`];
//! `HL034` and `HL035` come from both the analyzer and
//! [`Linter::store`];
//! [`codes`] is the machine-readable registry of every code, and
//! [`json`] serializes any report as stable `histpc-lint-report/v1`
//! JSON.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;
pub mod codes;
pub mod corpus;
pub mod facts;
pub mod json;
pub mod passes;
pub mod render;

pub use corpus::{ConflictVerdicts, CorpusAnalysis, CorpusAnalyzer, CorpusOptions};
pub use histpc_resources::diag::{Diagnostic, Severity, Span};
pub use json::{report_from_json, report_to_json, REPORT_SCHEMA};
pub use render::{render_all, summary, SourceCache};

use histpc_consultant::directive::{parse_with_spans as parse_directives, LocatedDirective};
use histpc_consultant::HypothesisTree;
use histpc_history::mapping::{parse_with_spans as parse_mappings, LocatedMap};
use histpc_history::{ExecutionRecord, MappingSet};

/// What kind of artifact a text file holds, guessed from its first
/// non-blank, non-comment line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A search-directive file (`prune` / `priority` / `threshold` lines).
    Directives,
    /// A mapping file (`map from to` lines).
    Mappings,
}

impl ArtifactKind {
    /// Guesses the artifact kind. Files whose first directive keyword is
    /// `map` are mappings; everything else (including empty files) is
    /// treated as directives.
    pub fn detect(text: &str) -> ArtifactKind {
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            return if line.split_whitespace().next() == Some("map") {
                ArtifactKind::Mappings
            } else {
                ArtifactKind::Directives
            };
        }
        ArtifactKind::Directives
    }
}

/// The outcome of a lint run: all diagnostics, sorted by (file, span,
/// code) and with exact repeats removed.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Everything found, most specific location first.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    fn from(mut diagnostics: Vec<Diagnostic>) -> LintReport {
        // Deterministic output: order never depends on check order or
        // any hash-map iteration upstream, and re-linting the same
        // artifact twice (e.g. a file added under two roles) does not
        // repeat findings. The sort key is extended past (file, span,
        // code) so equal diagnostics are adjacent for dedup and ties
        // break stably.
        diagnostics.sort_by(|a, b| {
            a.sort_key()
                .cmp(&b.sort_key())
                .then_with(|| a.severity.cmp(&b.severity))
                .then_with(|| a.message.cmp(&b.message))
        });
        diagnostics.dedup();
        LintReport { diagnostics }
    }

    /// True when nothing at all was found.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// All diagnostics with the given code, in order.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Renders every diagnostic in rustc style.
    pub fn render(&self, sources: &SourceCache) -> String {
        render_all(&self.diagnostics, sources)
    }
}

/// The lint driver: a hypothesis registry plus the artifacts to check.
///
/// ```
/// use histpc_lint::Linter;
///
/// let report = Linter::new()
///     .directives("prune CPUBound resource /SyncObject\n", "ex.dirs")
///     .run();
/// assert_eq!(report.with_code("HL002").len(), 1); // unknown hypothesis
/// ```
#[derive(Debug, Clone)]
pub struct Linter<'a> {
    hypothesis_names: Vec<String>,
    directives: Vec<(String, String)>,
    mappings: Vec<(String, String)>,
    record: Option<&'a ExecutionRecord>,
    store_roots: Vec<std::path::PathBuf>,
}

impl Default for Linter<'_> {
    fn default() -> Self {
        Linter::new()
    }
}

impl<'a> Linter<'a> {
    /// A linter validating against the standard Paradyn hypothesis tree.
    pub fn new() -> Linter<'a> {
        Linter::with_hypotheses(&HypothesisTree::standard())
    }

    /// A linter validating hypothesis references against a custom tree.
    pub fn with_hypotheses(tree: &HypothesisTree) -> Linter<'a> {
        Linter {
            hypothesis_names: tree.names().map(str::to_string).collect(),
            directives: Vec::new(),
            mappings: Vec::new(),
            record: None,
            store_roots: Vec::new(),
        }
    }

    /// Adds a directive file (text + name used in diagnostics).
    pub fn directives(mut self, text: impl Into<String>, file: impl Into<String>) -> Self {
        self.directives.push((file.into(), text.into()));
        self
    }

    /// Adds a mapping file (text + name used in diagnostics).
    pub fn mappings(mut self, text: impl Into<String>, file: impl Into<String>) -> Self {
        self.mappings.push((file.into(), text.into()));
        self
    }

    /// Adds a file of either kind, guessing with [`ArtifactKind::detect`].
    pub fn artifact(self, text: impl Into<String>, file: impl Into<String>) -> Self {
        let text = text.into();
        match ArtifactKind::detect(&text) {
            ArtifactKind::Directives => self.directives(text, file),
            ArtifactKind::Mappings => self.mappings(text, file),
        }
    }

    /// Cross-checks every directive resource (after mapping) against a
    /// recorded execution (`HL020`).
    pub fn against(mut self, record: &'a ExecutionRecord) -> Self {
        self.record = Some(record);
        self
    }

    /// Adds an execution store to check read-only with
    /// [`histpc_history::fsck`]: record checksum/parse failures
    /// (`HL023`), unclean-shutdown evidence such as stale locks and torn
    /// journals (`HL024`), legacy-layout or manifest drift (`HL025`),
    /// abandoned session checkpoints (`HL034`), and orphaned daemon
    /// leases (`HL035`).
    pub fn store(mut self, root: impl Into<std::path::PathBuf>) -> Self {
        self.store_roots.push(root.into());
        self
    }

    /// A [`SourceCache`] holding every artifact added so far, for
    /// rendering the report.
    pub fn sources(&self) -> SourceCache {
        let mut cache = SourceCache::new();
        for (file, text) in self.directives.iter().chain(&self.mappings) {
            cache.insert(file.clone(), text);
        }
        cache
    }

    /// Runs every applicable check.
    pub fn run(&self) -> LintReport {
        let mut diags = Vec::new();
        let mut all_directives: Vec<LocatedDirective> = Vec::new();
        let mut all_maps: Vec<LocatedMap> = Vec::new();

        for (file, text) in &self.directives {
            let (located, parse_diags) = parse_directives(text, file);
            diags.extend(parse_diags);
            diags.extend(checks::check_directives(
                &located,
                &self.hypothesis_names,
                file,
            ));
            all_directives.extend(located);
        }
        for (file, text) in &self.mappings {
            let (located, parse_diags) = parse_mappings(text, file);
            diags.extend(parse_diags);
            diags.extend(checks::check_mappings(&located, file));
            if !self.directives.is_empty() {
                diags.extend(checks::check_mapping_usage(&located, &all_directives, file));
            }
            all_maps.extend(located);
        }
        if let Some(record) = self.record {
            let mapping_set = MappingSet::from_located(&all_maps);
            for (file, text) in &self.directives {
                let (located, _) = parse_directives(text, file);
                diags.extend(checks::check_against_record(
                    &located,
                    &mapping_set,
                    record,
                    file,
                ));
                diags.extend(checks::check_unreachable_references(
                    &located,
                    &mapping_set,
                    record,
                    file,
                ));
                diags.extend(checks::check_saturated_references(
                    &located,
                    &mapping_set,
                    record,
                    file,
                ));
                diags.extend(checks::check_threshold_samples(&located, record, file));
            }
        }
        for root in &self.store_roots {
            diags.extend(histpc_history::fsck::fsck(root));
            diags.extend(checks::check_abandoned_checkpoints(root));
            diags.extend(checks::check_orphaned_leases(root));
        }
        LintReport::from(diags)
    }
}
