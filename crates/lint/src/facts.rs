//! Lowering: from a stored [`ExecutionRecord`] to a typed fact table.
//!
//! The corpus analyzer never walks raw records twice. A single lowering
//! pass distills each record into [`RecordFacts`] — the app/version
//! identity, a content-based resource-set signature (via the
//! [`Interner`]'s FNV hashing, stable across processes), the
//! well-observed bottleneck magnitudes per hypothesis, the degraded
//! markers, and the full directive set `histpc harvest` would extract —
//! and every analysis pass works off those facts alone. The fact table
//! serializes to a compact line-oriented text payload
//! (`histpc-facts v1`) so it can live in the store's
//! [`FactCache`](histpc_history::factcache::FactCache) sidecar and be
//! reloaded without touching the record at all.

use histpc_consultant::directive::SearchDirectives;
use histpc_history::{ExecutionRecord, ExtractionOptions, MIN_THRESHOLD_SAMPLES};
use histpc_resources::intern::Interner;

/// First line of a serialized fact table. Bump the version to
/// invalidate every cached payload at once.
pub const FACTS_HEADER: &str = "histpc-facts v1";

/// An observed true (bottleneck) conclusion: hypothesis, magnitude
/// (fraction of execution time), and how many samples grounded it.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedMagnitude {
    /// Hypothesis name.
    pub hypothesis: String,
    /// The concluded fraction of execution time.
    pub value: f64,
    /// Samples behind the conclusion (see
    /// [`MIN_THRESHOLD_SAMPLES`] for the well-observed bar).
    pub samples: u64,
}

impl ObservedMagnitude {
    /// True when enough samples ground the conclusion for it to anchor
    /// threshold reasoning.
    pub fn well_observed(&self) -> bool {
        self.samples >= MIN_THRESHOLD_SAMPLES
    }
}

/// Everything the corpus passes need to know about one stored run.
///
/// Identity fields (`app`, `label`, `seq`, `checksum`) are keyed
/// externally by the store listing and are *not* part of the serialized
/// payload; [`RecordFacts::parse`] leaves them empty for the corpus
/// loader to fill.
#[derive(Debug, Clone, Default)]
pub struct RecordFacts {
    /// Application name (from the store listing).
    pub app: String,
    /// Run label (from the store listing).
    pub label: String,
    /// Position in the app's sorted label order (0 = oldest).
    pub seq: usize,
    /// The record's FNV-64 payload checksum.
    pub checksum: u64,
    /// Application version string.
    pub version: String,
    /// Order-independent content signature of the resource set
    /// ([`Interner::set_signature`]).
    pub resource_sig: u64,
    /// Sorted display forms of every recorded resource.
    pub resources: Vec<String>,
    /// True-outcome magnitudes, in record order.
    pub magnitudes: Vec<ObservedMagnitude>,
    /// True when the run recorded unreachable (dead) resources.
    pub degraded_unreachable: bool,
    /// True when the run recorded saturated (overload-shed) resources.
    pub degraded_saturated: bool,
    /// The directives `histpc harvest` would extract from this run.
    pub directives: SearchDirectives,
}

/// Lowers one record into facts. `interner` caches per-name hashes
/// across the whole corpus, so repeated names cost one hash total.
pub fn lower(
    rec: &ExecutionRecord,
    interner: &mut Interner,
    opts: &ExtractionOptions,
) -> RecordFacts {
    let mut resources: Vec<String> = rec.resources.iter().map(|r| r.to_string()).collect();
    resources.sort();
    let magnitudes = rec
        .true_outcomes()
        .map(|o| ObservedMagnitude {
            hypothesis: o.hypothesis.clone(),
            value: o.last_value,
            samples: o.samples,
        })
        .collect();
    RecordFacts {
        app: rec.app_name.clone(),
        label: rec.label.clone(),
        seq: 0,
        checksum: 0,
        version: rec.app_version.clone(),
        resource_sig: interner.set_signature(&rec.resources),
        resources,
        magnitudes,
        degraded_unreachable: !rec.unreachable.is_empty(),
        degraded_saturated: !rec.saturated.is_empty(),
        directives: histpc_history::extract(rec, opts),
    }
}

impl RecordFacts {
    /// Serializes the payload fields (identity fields excluded — they
    /// are the cache key, not the cached value).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(FACTS_HEADER);
        out.push('\n');
        out.push_str(&format!("version {}\n", self.version));
        out.push_str(&format!("sig {:016x}\n", self.resource_sig));
        if self.degraded_unreachable {
            out.push_str("degraded unreachable\n");
        }
        if self.degraded_saturated {
            out.push_str("degraded saturated\n");
        }
        for r in &self.resources {
            out.push_str(&format!("resource {r}\n"));
        }
        for m in &self.magnitudes {
            out.push_str(&format!(
                "true {} {} {}\n",
                m.hypothesis, m.value, m.samples
            ));
        }
        // Directive lines reuse the directive file grammar verbatim
        // (minus its header comment), prefixed `d `.
        for line in self.directives.to_text().lines() {
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            out.push_str("d ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Parses a serialized payload. Identity fields come back empty.
    /// Any malformed line fails the whole parse — a damaged cache entry
    /// must be re-derived, never half-trusted.
    pub fn parse(text: &str) -> Result<RecordFacts, String> {
        let mut lines = text.lines();
        if lines.next() != Some(FACTS_HEADER) {
            return Err("missing facts header".into());
        }
        let mut facts = RecordFacts::default();
        let mut directive_text = String::new();
        for line in lines {
            let (kind, rest) = line.split_once(' ').unwrap_or((line, ""));
            match kind {
                "version" => facts.version = rest.to_string(),
                "sig" => {
                    facts.resource_sig = u64::from_str_radix(rest, 16)
                        .map_err(|_| format!("bad signature {rest:?}"))?;
                }
                "degraded" => match rest {
                    "unreachable" => facts.degraded_unreachable = true,
                    "saturated" => facts.degraded_saturated = true,
                    other => return Err(format!("unknown degraded marker {other:?}")),
                },
                "resource" => facts.resources.push(rest.to_string()),
                "true" => {
                    let mut parts = rest.split_whitespace();
                    let (Some(hyp), Some(value), Some(samples)) =
                        (parts.next(), parts.next(), parts.next())
                    else {
                        return Err(format!("bad magnitude line {line:?}"));
                    };
                    facts.magnitudes.push(ObservedMagnitude {
                        hypothesis: hyp.to_string(),
                        value: value
                            .parse()
                            .map_err(|_| format!("bad magnitude value {value:?}"))?,
                        samples: samples
                            .parse()
                            .map_err(|_| format!("bad sample count {samples:?}"))?,
                    });
                }
                "d" => {
                    directive_text.push_str(rest);
                    directive_text.push('\n');
                }
                other => return Err(format!("unknown fact line kind {other:?}")),
            }
        }
        facts.directives =
            SearchDirectives::parse(&directive_text).map_err(|d| d.message.clone())?;
        Ok(facts)
    }

    /// The minimum well-observed bottleneck magnitude for a hypothesis,
    /// if any — the anchor threshold-drift reasoning compares against.
    pub fn min_well_observed(&self, hypothesis: &str) -> Option<f64> {
        self.magnitudes
            .iter()
            .filter(|m| m.hypothesis == hypothesis && m.well_observed())
            .map(|m| m.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// The store-relative path of the record these facts came from —
    /// the `file` every corpus diagnostic points at.
    pub fn rel_path(&self) -> String {
        format!("{}/{}.record", self.app, self.label)
    }
}
