//! Per-tick sample batches from the simulator to the collector.
//!
//! The driver loop drains the engine once per tick and hands the whole
//! tick's intervals over as one [`SampleBatch`]. The batch carries
//! per-process counts computed once at the boundary, so admission
//! budgeting can rank and shed whole per-process groups without
//! re-examining individual samples, and the collector can route the
//! batch per pair (see [`crate::Collector::ingest`]).

use histpc_sim::{Engine, Interval};

/// One driver tick's worth of drained engine intervals.
#[derive(Debug, Clone, Default)]
pub struct SampleBatch {
    intervals: Vec<Interval>,
    per_proc: Vec<u64>,
}

impl SampleBatch {
    /// Wraps a tick's intervals; `proc_count` sizes the per-process
    /// count table (processes beyond it grow the table as needed).
    pub fn new(intervals: Vec<Interval>, proc_count: usize) -> SampleBatch {
        let mut per_proc = vec![0u64; proc_count];
        for iv in &intervals {
            let p = iv.proc.0 as usize;
            if p >= per_proc.len() {
                per_proc.resize(p + 1, 0);
            }
            per_proc[p] += 1;
        }
        SampleBatch {
            intervals,
            per_proc,
        }
    }

    /// Drains `engine` and wraps the result — the canonical driver-tick
    /// handoff from the simulator to the collector.
    pub fn drain(engine: &mut Engine) -> SampleBatch {
        let proc_count = engine.app().process_count();
        SampleBatch::new(engine.drain_intervals(), proc_count)
    }

    /// Number of intervals in the batch.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True when the batch holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The intervals, in engine emission order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Interval count per process rank.
    pub fn per_proc(&self) -> &[u64] {
        &self.per_proc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::workloads::{SyntheticWorkload, Workload};
    use histpc_sim::{ActivityKind, FuncId, ProcId, SimTime};

    fn iv(proc: u16, s: u64, e: u64) -> Interval {
        Interval {
            proc: ProcId(proc),
            func: FuncId(0),
            kind: ActivityKind::Cpu,
            tag: None,
            start: SimTime(s),
            end: SimTime(e),
            bytes: 0,
        }
    }

    #[test]
    fn counts_per_process() {
        let b = SampleBatch::new(vec![iv(0, 0, 1), iv(2, 1, 2), iv(0, 2, 3)], 3);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.per_proc(), &[2, 0, 1]);
        assert_eq!(b.intervals()[1].proc, ProcId(2));
    }

    #[test]
    fn grows_for_unexpected_ranks() {
        let b = SampleBatch::new(vec![iv(5, 0, 1)], 2);
        assert_eq!(b.per_proc(), &[0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn drains_an_engine() {
        let wl = SyntheticWorkload::balanced(2, 1, 0.1);
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_millis(500));
        let b = SampleBatch::drain(&mut e);
        assert!(!b.is_empty());
        assert_eq!(b.per_proc().len(), 2);
        // The engine was drained: a second batch is empty.
        assert!(SampleBatch::drain(&mut e).is_empty());
    }
}
