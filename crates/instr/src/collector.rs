//! The collector: online management of metric-focus pairs over a running
//! engine.
//!
//! The collector is the boundary between the Performance Consultant and
//! the application: the PC requests and releases (metric, focus) pairs;
//! the driver feeds drained engine intervals into [`Collector::observe`];
//! the cost model's slowdown factors are pushed back into the engine so
//! instrumentation perturbation is physically real in the simulation.

use crate::admission::{AdmissionConfig, AdmissionController, AdmitVerdict, RequestClass};
use crate::binder::{Binder, CompiledFocus};
use crate::cost::{CostConfig, CostModel};
use crate::delta::DeltaAggregator;
use crate::histogram::TimeHistogram;
use crate::metric::Metric;
use crate::pair::Pair;
use histpc_faults::RequestFault;
use histpc_resources::{Focus, FocusId, Interner, ResourceSpace};
use histpc_sim::{AppSpec, Engine, Interval, ProcId, SimDuration, SimTime};

/// Handle to a requested metric-focus pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId(pub u32);

/// Collector tuning knobs.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Time between an instrumentation request and the instrumentation
    /// actually being in place (paper §4.1).
    pub insertion_delay: SimDuration,
    /// Histogram bucket count per pair.
    pub hist_buckets: usize,
    /// Initial histogram bucket width.
    pub hist_width: SimDuration,
    /// Cost model parameters.
    pub cost: CostConfig,
    /// Overload admission control (disabled by default).
    pub admission: AdmissionConfig,
}

impl Default for CollectorConfig {
    fn default() -> CollectorConfig {
        CollectorConfig {
            insertion_delay: SimDuration::from_millis(80),
            hist_buckets: 480,
            hist_width: SimDuration::from_millis(200),
            cost: CostConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// What became of one admission-controlled instrumentation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// The pair was inserted.
    Granted(PairId),
    /// An injected daemon failure rejected the insertion; retry later.
    Failed,
    /// The admission controller had no capacity; retry later.
    Shed,
    /// Every process the focus covers is behind an open circuit breaker;
    /// the experiment concludes `Saturated`.
    Saturated,
}

/// Manages instrumentation over one application run.
pub struct Collector {
    binder: Binder,
    space: ResourceSpace,
    config: CollectorConfig,
    cost: CostModel,
    pairs: Vec<Pair>,
    /// Cost currently charged per pair (full while fresh, reduced once
    /// settled, zero after release).
    charged: Vec<f64>,
    /// Tags already added to the SyncObject hierarchy.
    discovered_tags: Vec<bool>,
    /// Total number of pairs ever requested (the paper's "hypothesis/
    /// focus pairs tested" instrumentation measure).
    requested_total: usize,
    /// End timestamp of the newest interval seen from each process, at
    /// the raw stream level (before any metric filtering). A process
    /// whose stream goes quiet here has stopped reporting entirely —
    /// the signal the starvation timeout keys on.
    last_data_at: Vec<SimTime>,
    /// Instrumentation requests rejected by injected daemon faults.
    requests_failed: u64,
    /// Instrumentation requests activated late by injected faults.
    requests_deferred: u64,
    /// Overload admission control (every call is a no-op when disabled).
    admission: AdmissionController,
    /// Interned foci; ids index [`Collector::compiled_foci`].
    interner: Interner,
    /// Compiled form of every interned focus. Compilation walks the
    /// app's name tables, so hot callers (the per-tick consultant
    /// sweeps, the request path) go through [`Collector::compile_focus`]
    /// and pay it once per distinct focus.
    compiled_foci: Vec<CompiledFocus>,
    /// Sample-delivery routes: for each process, the indices of pairs
    /// whose compiled focus covers it. Entries for deleted pairs are
    /// pruned lazily as batches pass their deletion time.
    route: Vec<Vec<u32>>,
    /// Reusable dense per-batch delta aggregation state.
    aggregator: DeltaAggregator,
}

impl Collector {
    /// Creates a collector for an application.
    pub fn new(app: AppSpec, config: CollectorConfig) -> Collector {
        let binder = Binder::new(app.clone());
        let space = binder.build_space();
        let cost = CostModel::new(config.cost.clone(), app.process_count());
        let tag_count = app.tags.len();
        let proc_count = app.process_count();
        let admission = AdmissionController::new(config.admission.clone(), proc_count);
        let func_count = app.function_count();
        Collector {
            binder,
            space,
            config,
            cost,
            pairs: Vec::new(),
            charged: Vec::new(),
            discovered_tags: vec![false; tag_count],
            requested_total: 0,
            last_data_at: vec![SimTime::ZERO; proc_count],
            requests_failed: 0,
            requests_deferred: 0,
            admission,
            interner: Interner::new(),
            compiled_foci: Vec::new(),
            route: vec![Vec::new(); proc_count],
            aggregator: DeltaAggregator::new(proc_count, func_count, tag_count),
        }
    }

    /// Interns `focus`, compiling it against the app on first sight.
    /// Repeats are a hash lookup; the compiled form is shared by every
    /// caller via [`Collector::compiled_focus`].
    pub fn compile_focus(&mut self, focus: &Focus) -> FocusId {
        if let Some(id) = self.interner.lookup_focus(focus) {
            return id;
        }
        let id = self.interner.intern_focus(focus);
        debug_assert_eq!(id.0 as usize, self.compiled_foci.len());
        self.compiled_foci.push(self.binder.compile(focus));
        id
    }

    /// The compiled form of an interned focus.
    pub fn compiled_focus(&self, id: FocusId) -> &CompiledFocus {
        &self.compiled_foci[id.0 as usize]
    }

    /// The focus interner (resource names and foci to copyable ids).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The resource space (grows as resources are discovered).
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The binder (name tables).
    pub fn binder(&self) -> &Binder {
        &self.binder
    }

    /// The configuration.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// The cost model (throttle signal).
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Number of pairs ever requested.
    pub fn pairs_requested(&self) -> usize {
        self.requested_total
    }

    /// Number of currently live (not deleted) pairs.
    pub fn pairs_live(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_live()).count()
    }

    /// Requests instrumentation of (metric, focus) at time `now`.
    /// The pair starts observing at `now + insertion_delay`.
    pub fn request(&mut self, metric: Metric, focus: Focus, now: SimTime) -> PairId {
        self.request_faulted(metric, focus, now, RequestFault::Deliver)
            .expect("Deliver always yields a pair")
    }

    /// [`Collector::request`] with an injected daemon fate: a `Fail`
    /// insertion is rejected outright (no pair, no cost — the caller
    /// retries), a `Defer` activates late by the extra delay, and
    /// `Deliver` is exactly the healthy path. Capacity refusals from the
    /// admission layer surface as `None`, like failures; callers that
    /// need to tell them apart use [`Collector::request_admitted`].
    pub fn request_faulted(
        &mut self,
        metric: Metric,
        focus: Focus,
        now: SimTime,
        fault: RequestFault,
    ) -> Option<PairId> {
        match self.request_admitted(metric, focus, now, fault, RequestClass::Backing) {
            AdmitOutcome::Granted(id) => Some(id),
            AdmitOutcome::Failed | AdmitOutcome::Shed | AdmitOutcome::Saturated => None,
        }
    }

    /// [`Collector::request_faulted`] through the admission controller:
    /// the request is classified for priority shedding, checked against
    /// the in-flight bound and the focus's circuit breakers, and its
    /// activation latency feeds per-process health tracking. With
    /// admission disabled this is exactly the legacy request path.
    pub fn request_admitted(
        &mut self,
        metric: Metric,
        focus: Focus,
        now: SimTime,
        fault: RequestFault,
        class: RequestClass,
    ) -> AdmitOutcome {
        let fid = self.compile_focus(&focus);
        let compiled = self.compiled_foci[fid.0 as usize].clone();
        let (extra, deferred) = match fault {
            RequestFault::Deliver => (SimDuration::ZERO, false),
            RequestFault::Fail => {
                self.requests_failed += 1;
                self.admission.note_failed(compiled.procs(), now);
                return AdmitOutcome::Failed;
            }
            RequestFault::Defer(d) => (d, true),
        };
        match self.admission.admit(compiled.procs(), class, now) {
            AdmitVerdict::Grant => {}
            AdmitVerdict::Shed => return AdmitOutcome::Shed,
            AdmitVerdict::Saturated => return AdmitOutcome::Saturated,
        }
        if deferred {
            self.requests_deferred += 1;
        }
        let cost = self.cost.pair_cost(&compiled);
        self.cost.add(&compiled, cost);
        let hist = TimeHistogram::new(self.config.hist_buckets, self.config.hist_width);
        let active_from = now + self.config.insertion_delay + extra;
        let idx = self.pairs.len() as u32;
        for &p in compiled.procs() {
            self.route[p.0 as usize].push(idx);
        }
        let procs = compiled.procs().to_vec();
        let pair = Pair::new(metric, focus, fid, compiled, now, active_from, hist);
        self.pairs.push(pair);
        self.charged.push(cost);
        self.requested_total += 1;
        self.admission.note_granted(&procs, active_from, now);
        AdmitOutcome::Granted(PairId(idx))
    }

    /// The admission controller (stats, pressure signals, breakers).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// Mutable access to the admission controller, for the driver's
    /// housekeeping tick and injected phantom load.
    pub fn admission_mut(&mut self) -> &mut AdmissionController {
        &mut self.admission
    }

    /// End timestamp of the newest raw interval seen from `proc`.
    pub fn last_data_at(&self, proc: ProcId) -> SimTime {
        self.last_data_at[proc.0 as usize]
    }

    /// Requests rejected by injected daemon faults.
    pub fn requests_failed(&self) -> u64 {
        self.requests_failed
    }

    /// Requests activated late by injected daemon faults.
    pub fn requests_deferred(&self) -> u64 {
        self.requests_deferred
    }

    /// Deletes a pair's instrumentation at time `now`. Its collected data
    /// remains queryable. Releasing twice is a no-op.
    pub fn release(&mut self, id: PairId, now: SimTime) {
        let i = id.0 as usize;
        let pair = &mut self.pairs[i];
        if pair.is_live() {
            pair.disabled_at = Some(now);
            let fid = pair.focus_id;
            self.cost
                .sub(&self.compiled_foci[fid.0 as usize], self.charged[i]);
            self.charged[i] = 0.0;
        }
    }

    /// Marks a long-lived pair as *settled*: its instrumentation stays in
    /// place but its sampling rate (and therefore cost) drops to the
    /// configured residual fraction. Idempotent; no-op after release.
    pub fn settle(&mut self, id: PairId) {
        let i = id.0 as usize;
        if !self.pairs[i].is_live() {
            return;
        }
        let fid = self.pairs[i].focus_id;
        let compiled = &self.compiled_foci[fid.0 as usize];
        let settled = self.cost.pair_cost(compiled) * self.cost.config().settle_factor;
        if self.charged[i] > settled {
            self.cost.sub(compiled, self.charged[i] - settled);
            self.charged[i] = settled;
        }
    }

    /// Feeds one engine interval to every pair and discovers new
    /// SyncObject resources.
    pub fn observe(&mut self, iv: &Interval) {
        self.note_data(iv);
        if let Some(tag) = iv.tag {
            let idx = tag.0 as usize;
            if idx < self.discovered_tags.len() && !self.discovered_tags[idx] {
                self.discovered_tags[idx] = true;
                let name = self.binder.tag_name(tag);
                self.space
                    .add_resource(&name)
                    .expect("tag labels are valid resource segments");
            }
        }
        for pair in &mut self.pairs {
            pair.observe(iv, &self.binder);
        }
    }

    /// Feeds a batch of intervals one by one (exact but slow; prefer
    /// [`Collector::observe_batch`] for driver loops).
    pub fn observe_all(&mut self, ivs: &[Interval]) {
        for iv in ivs {
            self.observe(iv);
        }
    }

    /// Feeds a batch of intervals via per-key aggregation: tag discovery
    /// stays exact, metric values are spread uniformly over each key's
    /// span within the batch (see [`crate::delta`]).
    ///
    /// With admission enabled the batch first passes the per-batch
    /// sample budget: real intervals beyond the quota are shed (highest
    /// process ranks first, deterministically) and never observed — shed
    /// data also does not count as stream freshness, so a fully starved
    /// process eventually trips the existing starvation timeout.
    pub fn observe_batch(&mut self, ivs: &[Interval]) {
        let batch = crate::batch::SampleBatch::new(ivs.to_vec(), self.last_data_at.len());
        self.ingest(&batch);
    }

    /// Feeds one driver tick's [`SampleBatch`](crate::batch::SampleBatch)
    /// — the canonical sim-to-collector handoff. Admission budgeting
    /// works on the batch's precomputed per-process groups: under
    /// pressure, whole groups are shed in descending rank order instead
    /// of re-evaluating sample by sample. With no pressure the batch is
    /// delivered exactly as [`Collector::observe_batch`] always has.
    pub fn ingest(&mut self, batch: &crate::batch::SampleBatch) {
        match self.admission.sample_quota(batch.len() as u64) {
            None => {
                if self.admission.config().enabled {
                    self.note_batch_delivered(batch.per_proc());
                }
                self.observe_batch_inner(batch.intervals());
            }
            Some(keep) => {
                let kept = self.shed_batch(batch, keep);
                self.observe_batch_inner(&kept);
            }
        }
    }

    fn observe_batch_inner(&mut self, ivs: &[Interval]) {
        for iv in ivs {
            self.note_data(iv);
            if let Some(tag) = iv.tag {
                let idx = tag.0 as usize;
                if idx < self.discovered_tags.len() && !self.discovered_tags[idx] {
                    self.discovered_tags[idx] = true;
                    let name = self.binder.tag_name(tag);
                    self.space
                        .add_resource(&name)
                        .expect("tag labels are valid resource segments");
                }
            }
        }
        let deltas = self.aggregator.aggregate(ivs);
        let Some(batch_start) = deltas.iter().map(|d| d.start).min() else {
            return;
        };
        // Deltas sort leading with proc, so consecutive runs partition
        // the slice per process; each run is delivered only to the pairs
        // routed to that process. Per pair this replays the deltas in
        // exactly the old every-pair-scans-everything order, because the
        // run order *is* the sorted order.
        let pairs = &mut self.pairs;
        let binder = &self.binder;
        let route = &self.route;
        let mut i = 0;
        while i < deltas.len() {
            let proc = deltas[i].proc;
            let mut j = i + 1;
            while j < deltas.len() && deltas[j].proc == proc {
                j += 1;
            }
            let group = &deltas[i..j];
            for &pi in &route[proc.0 as usize] {
                let pair = &mut pairs[pi as usize];
                // Pairs deleted before this batch can never observe it.
                // (Not pruned from the route: a wait that started before
                // the deletion may still complete — and arrive — later.)
                if pair.disabled_at.is_some_and(|d| d <= batch_start) {
                    continue;
                }
                for d in group {
                    pair.observe_delta(d, binder);
                }
            }
            i = j;
        }
    }

    /// Sheds a batch down to the `keep` sample quota in whole per-process
    /// groups: allowance is granted in ascending rank order, and the
    /// first group that does not fit — plus every higher rank — is shed
    /// entirely. Per-process health is recorded as it goes.
    fn shed_batch(&mut self, batch: &crate::batch::SampleBatch, keep: u64) -> Vec<Interval> {
        let per_proc = batch.per_proc();
        let now = batch
            .intervals()
            .iter()
            .map(|iv| iv.end)
            .max()
            .unwrap_or(SimTime::ZERO);
        let mut left = keep;
        let mut cut = per_proc.len();
        for (p, &count) in per_proc.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if cut == per_proc.len() && count <= left {
                left -= count;
                self.admission.note_batch_ok(ProcId(p as u16));
            } else {
                cut = cut.min(p);
                self.admission.note_batch_shed(ProcId(p as u16), now);
            }
        }
        batch
            .intervals()
            .iter()
            .filter(|iv| (iv.proc.0 as usize) < cut)
            .cloned()
            .collect()
    }

    /// Records an unshed batch as clean delivery for every process that
    /// contributed data (resets sample-path breaker streaks).
    fn note_batch_delivered(&mut self, per_proc: &[u64]) {
        for (p, &count) in per_proc.iter().enumerate() {
            if count > 0 {
                self.admission.note_batch_ok(ProcId(p as u16));
            }
        }
    }

    /// Records that `iv`'s process delivered data. Tracked on the raw
    /// stream, before metric filtering, so a process emitting *any*
    /// intervals counts as alive even for pairs whose metric it never
    /// feeds (a zero-IO process genuinely measures zero IO, it is not
    /// starved).
    fn note_data(&mut self, iv: &Interval) {
        let i = iv.proc.0 as usize;
        self.last_data_at[i] = self.last_data_at[i].max(iv.end);
    }

    /// Pushes the current perturbation slowdowns into the engine.
    pub fn apply_perturbation(&self, engine: &mut Engine) {
        for (p, s) in self.cost.slowdowns().into_iter().enumerate() {
            engine.set_slowdown(histpc_sim::ProcId(p as u16), s);
        }
    }

    /// The pair's accumulated metric value over `[from, to)`.
    pub fn value(&self, id: PairId, from: SimTime, to: SimTime) -> f64 {
        self.pairs[id.0 as usize].value(from, to)
    }

    /// Read access to a pair.
    pub fn pair(&self, id: PairId) -> &Pair {
        &self.pairs[id.0 as usize]
    }

    /// Iterates over all pairs ever requested.
    pub fn pairs(&self) -> impl Iterator<Item = (PairId, &Pair)> {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, p)| (PairId(i as u32), p))
    }

    /// Number of processes covered by a focus (for per-process
    /// normalization of time metrics).
    pub fn procs_in_focus(&self, focus: &Focus) -> usize {
        match self.interner.lookup_focus(focus) {
            Some(id) => self.compiled_foci[id.0 as usize].procs().len(),
            None => self.binder.compile(focus).procs().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::ResourceName;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, SyntheticWorkload, Workload};
    use histpc_sim::ProcId;

    fn drive(engine: &mut Engine, collector: &mut Collector, until_ms: u64, step_ms: u64) {
        let mut t = 0;
        while t < until_ms {
            t += step_ms;
            engine.run_until(SimTime::from_millis(t));
            let ivs = engine.drain_intervals();
            collector.observe_all(&ivs);
            collector.apply_perturbation(engine);
        }
    }

    #[test]
    fn whole_program_cpu_matches_ground_truth() {
        let wl = SyntheticWorkload::balanced(2, 2, 1.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let focus = c.space().whole_program();
        let id = c.request(Metric::CpuTime, focus, SimTime::ZERO);
        drive(&mut engine, &mut c, 1000, 50);
        let measured = c.value(id, SimTime::ZERO, SimTime::from_secs(1));
        let truth = engine
            .totals()
            .total(histpc_sim::ActivityKind::Cpu)
            .as_secs_f64();
        // The pair missed the insertion delay at the start; allow for it.
        assert!(
            measured > 0.5 * truth && measured <= truth * 1.001,
            "measured {measured} truth {truth}"
        );
    }

    #[test]
    fn insertion_delay_hides_early_data() {
        let wl = SyntheticWorkload::balanced(1, 1, 1.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let id = c.request(Metric::CpuTime, c.space().whole_program(), SimTime::ZERO);
        drive(&mut engine, &mut c, 200, 10);
        // Active from 80ms: at most ~120ms of CPU observable.
        let v = c.value(id, SimTime::ZERO, SimTime::from_secs(1));
        assert!(v <= 0.125, "observed {v}");
        assert!(v >= 0.08, "observed {v}");
    }

    #[test]
    fn release_stops_collection_but_keeps_data() {
        let wl = SyntheticWorkload::balanced(1, 1, 1.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let id = c.request(Metric::CpuTime, c.space().whole_program(), SimTime::ZERO);
        drive(&mut engine, &mut c, 500, 50);
        c.release(id, SimTime::from_millis(500));
        let at_release = c.value(id, SimTime::ZERO, SimTime::from_secs(5));
        drive(&mut engine, &mut c, 1000, 50);
        let after = c.value(id, SimTime::ZERO, SimTime::from_secs(5));
        assert!((after - at_release).abs() < 1e-9);
        assert_eq!(c.pairs_live(), 0);
        assert_eq!(c.pairs_requested(), 1);
        // Double release is harmless.
        c.release(id, SimTime::from_millis(900));
    }

    #[test]
    fn cost_feeds_back_as_slowdown() {
        // The same fixed-iteration workload takes measurably longer under
        // active instrumentation: perturbation is physically real.
        let wl = SyntheticWorkload::balanced(2, 1, 1.0).with_max_iters(500);
        let mut clean = wl.build_engine();
        clean.run_until(SimTime::from_secs(3600));
        let t_clean = clean.proc_clock(ProcId(0));

        let mut perturbed = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        for _ in 0..4 {
            c.request(Metric::CpuTime, c.space().whole_program(), SimTime::ZERO);
        }
        c.apply_perturbation(&mut perturbed);
        perturbed.run_until(SimTime::from_secs(3600));
        let t_pert = perturbed.proc_clock(ProcId(0));

        // 4 whole-program pairs, each at the configured base cost.
        let expect = 1.0 + 4.0 * CollectorConfig::default().cost.base_pair_cost;
        let ratio = t_pert.as_micros() as f64 / t_clean.as_micros() as f64;
        assert!(
            (ratio - expect).abs() < 0.005,
            "slowdown ratio was {ratio}, expected ~{expect} ({t_clean} -> {t_pert})"
        );
    }

    #[test]
    fn tags_are_discovered_dynamically() {
        let wl = PoissonWorkload::new(PoissonVersion::C);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let tag_res = ResourceName::parse("/SyncObject/Message/3_0")
            .expect("literal tag resource name is valid");
        assert!(!c.space().contains(&tag_res));
        drive(&mut engine, &mut c, 200, 20);
        assert!(c.space().contains(&tag_res));
        assert!(c.space().contains(
            &ResourceName::parse("/SyncObject/Message/3_-1")
                .expect("literal tag resource name is valid")
        ));
    }

    #[test]
    fn faulted_requests_fail_defer_and_count() {
        let wl = SyntheticWorkload::balanced(1, 1, 1.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let wp = c.space().whole_program();
        assert!(c
            .request_faulted(
                Metric::CpuTime,
                wp.clone(),
                SimTime::ZERO,
                RequestFault::Fail
            )
            .is_none());
        assert_eq!(c.pairs_requested(), 0, "a failed request never counts");
        assert_eq!(c.requests_failed(), 1);
        // Deferred: active only from insertion_delay + 200ms extra.
        let id = c
            .request_faulted(
                Metric::CpuTime,
                wp,
                SimTime::ZERO,
                RequestFault::Defer(SimDuration::from_millis(200)),
            )
            .expect("a deferred request still yields a pair");
        assert_eq!(c.requests_deferred(), 1);
        drive(&mut engine, &mut c, 500, 10);
        let v = c.value(id, SimTime::ZERO, SimTime::from_secs(1));
        // 500ms of CPU, observable only after 280ms.
        assert!(v <= 0.225, "observed {v}");
        assert!(v >= 0.15, "observed {v}");
    }

    #[test]
    fn last_data_at_tracks_raw_stream_per_process() {
        let wl = SyntheticWorkload::balanced(2, 1, 1.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        assert_eq!(c.last_data_at(ProcId(0)), SimTime::ZERO);
        engine.run_until(SimTime::from_millis(100));
        c.observe_batch(&engine.drain_intervals());
        let t0 = c.last_data_at(ProcId(0));
        let t1 = c.last_data_at(ProcId(1));
        assert!(t0 > SimTime::ZERO && t1 > SimTime::ZERO);
        // Data flows even with zero pairs requested: the freshness signal
        // is stream-level, not pair-level.
        assert_eq!(c.pairs_requested(), 0);
        engine.run_until(SimTime::from_millis(200));
        c.observe_batch(&engine.drain_intervals());
        assert!(c.last_data_at(ProcId(0)) > t0);
    }

    #[test]
    fn observations_count_matching_samples() {
        let wl = SyntheticWorkload::balanced(1, 1, 1.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let id = c.request(Metric::CpuTime, c.space().whole_program(), SimTime::ZERO);
        assert_eq!(c.pair(id).observations, 0);
        drive(&mut engine, &mut c, 500, 50);
        assert!(c.pair(id).observations > 0);
    }

    #[test]
    fn proc_constrained_pair_sees_only_its_process() {
        let wl = SyntheticWorkload::balanced(2, 1, 1.0).with_hotspot(0, 0, 3.0);
        let mut engine = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), CollectorConfig::default());
        let f1 = c.space().whole_program().with_selection(
            ResourceName::parse("/Process/synth:1").expect("literal process name is valid"),
        );
        let f2 = c.space().whole_program().with_selection(
            ResourceName::parse("/Process/synth:2").expect("literal process name is valid"),
        );
        let id1 = c.request(Metric::CpuTime, f1, SimTime::ZERO);
        let id2 = c.request(Metric::CpuTime, f2, SimTime::ZERO);
        drive(&mut engine, &mut c, 1000, 50);
        let v1 = c.value(id1, SimTime::ZERO, SimTime::from_secs(1));
        let v2 = c.value(id2, SimTime::ZERO, SimTime::from_secs(1));
        // Both run flat out (compute only), so CPU time is similar, but
        // they are distinct measurements; with the hotspot on proc 0 both
        // should be near 100% of wall.
        assert!(v1 > 0.8 && v2 > 0.8, "v1={v1} v2={v2}");
        assert_eq!(c.procs_in_focus(&c.pair(id1).focus), 1);
    }

    fn tight_admission() -> CollectorConfig {
        CollectorConfig {
            admission: crate::admission::AdmissionConfig {
                enabled: true,
                max_in_flight: 2,
                sample_budget: 6,
                deadline: SimDuration::from_millis(500),
                breaker_threshold: 2,
                breaker_cooldown: SimDuration::from_secs(1),
            },
            ..CollectorConfig::default()
        }
    }

    #[test]
    fn admission_bound_sheds_requests_through_the_collector() {
        let wl = SyntheticWorkload::balanced(2, 1, 1.0);
        let _ = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), tight_admission());
        let wp = c.space().whole_program();
        // Pool of 2, reserve 1: only one refinement slot.
        let first = c.request_admitted(
            Metric::CpuTime,
            wp.clone(),
            SimTime::ZERO,
            RequestFault::Deliver,
            RequestClass::Refinement,
        );
        assert!(matches!(first, AdmitOutcome::Granted(_)));
        let second = c.request_admitted(
            Metric::CpuTime,
            wp.clone(),
            SimTime::ZERO,
            RequestFault::Deliver,
            RequestClass::Refinement,
        );
        assert_eq!(second, AdmitOutcome::Shed);
        // The backing class still gets the reserved slot.
        let third = c.request_admitted(
            Metric::CpuTime,
            wp.clone(),
            SimTime::ZERO,
            RequestFault::Deliver,
            RequestClass::Backing,
        );
        assert!(matches!(third, AdmitOutcome::Granted(_)));
        assert_eq!(c.admission().stats().peak_in_flight, 2);
        // A shed request inserted no pair and charged no cost.
        assert_eq!(c.pairs_requested(), 2);
        // After the insertion delay both requests have activated and
        // capacity returns.
        let later = c.request_admitted(
            Metric::CpuTime,
            wp,
            SimTime::from_millis(100),
            RequestFault::Deliver,
            RequestClass::Refinement,
        );
        assert!(matches!(later, AdmitOutcome::Granted(_)));
    }

    #[test]
    fn repeated_failures_saturate_a_single_proc_focus() {
        let wl = SyntheticWorkload::balanced(2, 1, 1.0);
        let _ = wl.build_engine();
        let mut c = Collector::new(wl.app_spec(), tight_admission());
        let f1 = c.space().whole_program().with_selection(
            ResourceName::parse("/Process/synth:1").expect("literal process name is valid"),
        );
        for ms in [0, 100] {
            assert_eq!(
                c.request_admitted(
                    Metric::CpuTime,
                    f1.clone(),
                    SimTime::from_millis(ms),
                    RequestFault::Fail,
                    RequestClass::Refinement,
                ),
                AdmitOutcome::Failed
            );
        }
        // Two consecutive failures tripped proc 0's breaker.
        assert_eq!(
            c.request_admitted(
                Metric::CpuTime,
                f1,
                SimTime::from_millis(200),
                RequestFault::Deliver,
                RequestClass::Refinement,
            ),
            AdmitOutcome::Saturated
        );
        // The whole program still has a healthy process: not saturated.
        let wp = c.space().whole_program();
        assert!(matches!(
            c.request_admitted(
                Metric::CpuTime,
                wp,
                SimTime::from_millis(200),
                RequestFault::Deliver,
                RequestClass::Refinement,
            ),
            AdmitOutcome::Granted(_)
        ));
        assert_eq!(c.admission_mut().drain_newly_saturated(), vec![0]);
    }

    #[test]
    fn sample_budget_starves_highest_ranks_first() {
        let wl = SyntheticWorkload::balanced(2, 1, 1.0);
        let mut engine = wl.build_engine();
        // Budget sized so one process's per-tick group fits but both
        // don't: shedding is whole-group, so the budget must cover the
        // lowest rank's group for it to keep flowing.
        let mut cfg = tight_admission();
        cfg.admission.sample_budget = 150;
        let mut c = Collector::new(wl.app_spec(), cfg);
        // Flood far above the budget: real data competes for the budget
        // lowest-rank-first, so proc 0 keeps flowing while proc 1 (the
        // highest rank) is shed.
        for step in 1..=5u64 {
            engine.run_until(SimTime::from_millis(100 * step));
            let ivs = engine.drain_intervals();
            c.admission_mut().note_phantom_samples(1000);
            c.observe_batch(&ivs);
        }
        assert!(c.last_data_at(ProcId(0)) > SimTime::ZERO);
        assert!(c.admission().stats().shed_samples > 0);
        assert!(
            c.last_data_at(ProcId(1)) <= c.last_data_at(ProcId(0)),
            "shedding must concentrate on the highest rank"
        );
    }
}
