//! `histpc-instr`: the dynamic-instrumentation layer.
//!
//! Paradyn inserts and deletes measurement instrumentation *while the
//! program runs*; the Performance Consultant's behaviour — and everything
//! the paper improves — is shaped by the economics of that mechanism:
//!
//! * data for a (metric, focus) pair exists **only while the pair is
//!   instrumented** — there is no retroactive data;
//! * inserting instrumentation takes real time (the paper §4.1: "the
//!   starting timestamp is determined by the instant of the
//!   instrumentation request, plus the time required to actually insert
//!   the instrumentation");
//! * every active pair **perturbs** the application, and total
//!   instrumentation cost is continuously monitored so the search can be
//!   throttled (paper §2).
//!
//! This crate reproduces those mechanics over the `histpc-sim` engine:
//! [`Collector`] manages metric-focus pairs, clips observed intervals to
//! their enablement windows, folds values into Paradyn-style time
//! histograms, models perturbation cost, and exposes per-process slowdown
//! factors that the driver feeds back into the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod batch;
pub mod binder;
pub mod collector;
pub mod cost;
pub mod delta;
pub mod histogram;
pub mod metric;
pub mod pair;
pub mod postmortem;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, AdmitVerdict, RequestClass,
};
pub use batch::SampleBatch;
pub use binder::Binder;
pub use collector::{AdmitOutcome, Collector, CollectorConfig, PairId};
pub use cost::{CostConfig, CostModel};
pub use histogram::TimeHistogram;
pub use metric::Metric;
pub use postmortem::PostmortemData;
