//! The instrumentation perturbation cost model.
//!
//! "To prevent the PC data requests from overwhelming the system capacity
//! or perturbing the application to a point where reliable results cannot
//! be determined, the cost of instrumentation enabled by the PC is
//! continually monitored. Search expansion ... is halted when the cost
//! reaches a critical threshold, and restarted once instrumentation
//! deletion ... causes the cost to return to an acceptable level." (§2)
//!
//! We model each active metric-focus pair as stealing a fraction of the
//! CPU of every process its focus covers. The fraction scales with how
//! much of the code the pair intercepts: instrumenting the whole program
//! means hooks in every function and message operation, while a single
//! function costs far less. The per-process sum is both the slowdown
//! factor fed back into the engine (perturbation is *real* here) and the
//! signal the Performance Consultant throttles on.

use crate::binder::CompiledFocus;

/// Tunable parameters of the cost model.
#[derive(Debug, Clone)]
pub struct CostConfig {
    /// Cost fraction of one pair whose code selection is the whole
    /// program (hooks everywhere).
    pub base_pair_cost: f64,
    /// Multiplier for a module-level code selection.
    pub module_factor: f64,
    /// Multiplier for a single-function code selection.
    pub function_factor: f64,
    /// Multiplier when the pair only intercepts message events
    /// (a SyncObject-constrained focus).
    pub message_factor: f64,
    /// Residual cost fraction of a *settled* pair: once a pair has run a
    /// full observation window its sampling rate is reduced (as Paradyn's
    /// time-histogram folding halves sampling frequency over time), so
    /// long-lived persistent pairs are much cheaper to keep than to place.
    pub settle_factor: f64,
    /// The critical cost threshold at which the Performance Consultant
    /// halts search expansion.
    pub halt_threshold: f64,
    /// Expansion restarts once cost falls back below this level.
    pub resume_threshold: f64,
}

impl Default for CostConfig {
    fn default() -> CostConfig {
        CostConfig {
            base_pair_cost: 0.02,
            module_factor: 0.4,
            function_factor: 0.1,
            message_factor: 0.5,
            settle_factor: 0.01,
            halt_threshold: 0.05,
            resume_threshold: 0.035,
        }
    }
}

/// Computes per-pair and per-process instrumentation cost.
#[derive(Debug, Clone)]
pub struct CostModel {
    config: CostConfig,
    /// Per-process accumulated cost fraction from active pairs, as a
    /// *signed* running balance. Refunds subtract exactly; an over-refund
    /// leaves a negative residual that the next charge nets against,
    /// instead of being silently clamped away (which would make the
    /// books drift and skew admission decisions). Read paths clamp to
    /// zero only at the boundary.
    per_proc: Vec<f64>,
}

/// Any steady-state float drift beyond this on a process's signed cost
/// balance means charges and refunds no longer pair up — an accounting
/// bug, not rounding.
const DRIFT_BOUND: f64 = 1e-6;

impl CostModel {
    /// A model for `procs` processes.
    pub fn new(config: CostConfig, procs: usize) -> CostModel {
        CostModel {
            config,
            per_proc: vec![0.0; procs],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CostConfig {
        &self.config
    }

    /// The cost fraction one pair with this focus contributes to each
    /// process it covers.
    pub fn pair_cost(&self, focus: &CompiledFocus) -> f64 {
        let mut c = self.config.base_pair_cost;
        if focus.is_single_function() {
            c *= self.config.function_factor;
        } else if focus.is_module() {
            c *= self.config.module_factor;
        }
        if focus.is_message_constrained() {
            c *= self.config.message_factor;
        }
        c
    }

    /// Adds `amount` of cost to every process in the focus.
    pub fn add(&mut self, focus: &CompiledFocus, amount: f64) {
        for p in focus.procs() {
            self.per_proc[p.0 as usize] += amount;
        }
    }

    /// Refunds `amount` of cost from every process in the focus. The
    /// refund is taken against the signed balance: no clamping, so a
    /// charge/refund mismatch shows up as residual instead of vanishing.
    pub fn sub(&mut self, focus: &CompiledFocus, amount: f64) {
        for p in focus.procs() {
            let bal = &mut self.per_proc[p.0 as usize];
            *bal -= amount;
            debug_assert!(
                *bal >= -DRIFT_BOUND,
                "cost balance of {p:?} drifted to {bal}: refunds exceed charges"
            );
        }
    }

    /// The signed cost balance of one process — negative when refunds
    /// have (erroneously) exceeded charges. Exposed for accounting tests
    /// and diagnostics; consumers of cost use [`CostModel::proc_cost`].
    pub fn residual(&self, proc: usize) -> f64 {
        self.per_proc[proc]
    }

    /// Accounts for a pair being enabled at full (placement) cost.
    pub fn enable(&mut self, focus: &CompiledFocus) {
        self.add(focus, self.pair_cost(focus));
    }

    /// Accounts for a pair being disabled from full cost.
    pub fn disable(&mut self, focus: &CompiledFocus) {
        self.sub(focus, self.pair_cost(focus));
    }

    /// Current cost fraction on one process (clamped at the boundary:
    /// rounding dust below zero reads as zero).
    pub fn proc_cost(&self, proc: usize) -> f64 {
        self.per_proc[proc].max(0.0)
    }

    /// The throttling signal: the worst per-process cost.
    pub fn total_cost(&self) -> f64 {
        self.per_proc.iter().copied().fold(0.0, f64::max)
    }

    /// Slowdown factors (>= 1) to feed into the engine.
    pub fn slowdowns(&self) -> Vec<f64> {
        self.per_proc.iter().map(|c| 1.0 + c.max(0.0)).collect()
    }

    /// Would adding a pair with this focus exceed the halt threshold?
    pub fn would_exceed(&self, focus: &CompiledFocus) -> bool {
        let c = self.pair_cost(focus);
        focus
            .procs()
            .iter()
            .any(|p| self.per_proc[p.0 as usize].max(0.0) + c > self.config.halt_threshold)
    }

    /// True if expansion is currently halted (cost at or above the halt
    /// threshold).
    pub fn is_saturated(&self) -> bool {
        self.total_cost() >= self.config.halt_threshold
    }

    /// True once cost has fallen low enough to resume expansion.
    pub fn can_resume(&self) -> bool {
        self.total_cost() < self.config.resume_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use histpc_resources::ResourceName;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, Workload};

    fn setup() -> (Binder, CostModel) {
        let b = Binder::new(PoissonWorkload::new(PoissonVersion::A).app_spec());
        let m = CostModel::new(CostConfig::default(), 4);
        (b, m)
    }

    fn cf(b: &Binder, sels: &[&str]) -> CompiledFocus {
        let mut f = b.build_space().whole_program();
        for s in sels {
            f = f.with_selection(ResourceName::parse(s).unwrap());
        }
        b.compile(&f)
    }

    #[test]
    fn narrower_code_is_cheaper() {
        let (b, m) = setup();
        let whole = m.pair_cost(&cf(&b, &[]));
        let module = m.pair_cost(&cf(&b, &["/Code/exchng1.f"]));
        let func = m.pair_cost(&cf(&b, &["/Code/exchng1.f/exchng1"]));
        assert!(whole > module && module > func, "{whole} {module} {func}");
    }

    #[test]
    fn message_constrained_is_cheaper() {
        let (b, m) = setup();
        let all = m.pair_cost(&cf(&b, &[]));
        let msg = m.pair_cost(&cf(&b, &["/SyncObject/Message"]));
        assert!(msg < all);
    }

    #[test]
    fn enable_disable_roundtrip() {
        let (b, mut m) = setup();
        let f = cf(&b, &[]);
        assert_eq!(m.total_cost(), 0.0);
        m.enable(&f);
        let c1 = m.total_cost();
        assert!(c1 > 0.0);
        m.enable(&f);
        assert!(m.total_cost() > c1);
        m.disable(&f);
        m.disable(&f);
        assert!(m.total_cost().abs() < 1e-12);
    }

    #[test]
    fn proc_constrained_pairs_cost_only_their_proc() {
        let (b, mut m) = setup();
        m.enable(&cf(&b, &["/Process/poisson:2"]));
        assert!(m.proc_cost(1) > 0.0);
        assert_eq!(m.proc_cost(0), 0.0);
        assert_eq!(m.proc_cost(2), 0.0);
    }

    #[test]
    fn saturation_and_resume() {
        let (b, mut m) = setup();
        let f = cf(&b, &[]);
        assert!(!m.is_saturated());
        // Enable whole-program pairs until the halt threshold is reached.
        let per_pair = m.pair_cost(&f);
        let needed = (m.config().halt_threshold / per_pair).ceil() as usize;
        for _ in 0..needed {
            m.enable(&f);
        }
        assert!(m.is_saturated());
        assert!(!m.can_resume());
        // Disable enough to fall below the resume threshold.
        let keep = (m.config().resume_threshold / per_pair).ceil() as usize - 1;
        for _ in 0..(needed - keep) {
            m.disable(&f);
        }
        assert!(m.can_resume());
    }

    #[test]
    fn slowdowns_reflect_cost() {
        let (b, mut m) = setup();
        m.enable(&cf(&b, &[]));
        let expect = 1.0 + m.config().base_pair_cost;
        let s = m.slowdowns();
        assert_eq!(s.len(), 4);
        for v in s {
            assert!((v - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn would_exceed_predicts_threshold() {
        let (b, mut m) = setup();
        let f = cf(&b, &[]);
        // Fill the budget to exactly the halt threshold: landing on the
        // threshold is allowed, anything beyond is an excess.
        let halt = m.config().halt_threshold;
        m.add(&f, halt - m.pair_cost(&f));
        assert!(!m.would_exceed(&f));
        m.enable(&f);
        assert!(m.would_exceed(&f));
        let tiny = cf(&b, &["/Code/diff.f/diff"]);
        assert!(m.would_exceed(&tiny));
        m.disable(&f);
        assert!(!m.would_exceed(&tiny));
    }

    #[test]
    fn settled_cost_arithmetic() {
        let (b, mut m) = setup();
        let f = cf(&b, &[]);
        let full = m.pair_cost(&f);
        m.add(&f, full);
        let settled = full * m.config().settle_factor;
        m.sub(&f, full - settled);
        assert!((m.total_cost() - settled).abs() < 1e-12);
        m.sub(&f, settled);
        assert!(m.total_cost().abs() < 1e-12);
        assert!(m.residual(0).abs() < 1e-12);
    }

    #[test]
    fn refunds_track_signed_residual_instead_of_clamping() {
        // Regression: `sub` used to clamp each balance at 0.0, silently
        // swallowing over-refunds. A refund mismatch must stay on the
        // books (negative residual netted by the next charge), while
        // boundary reads still clamp rounding dust.
        let (b, mut m) = setup();
        let f = cf(&b, &[]);
        m.add(&f, 0.010);
        // Many uneven charge/refund pairs: the signed balance nets to
        // exactly the sum, no drift accumulates from clamping.
        for _ in 0..1000 {
            m.add(&f, 0.003);
            m.sub(&f, 0.001);
            m.sub(&f, 0.002);
        }
        assert!((m.residual(0) - 0.010).abs() < 1e-9, "{}", m.residual(0));
        assert!((m.total_cost() - 0.010).abs() < 1e-9);
        m.sub(&f, 0.010);
        assert!(m.residual(0).abs() < 1e-9);
        // Boundary reads clamp float dust, never report negative cost.
        assert!(m.proc_cost(0) >= 0.0);
        for s in m.slowdowns() {
            assert!(s >= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "refunds exceed charges")]
    #[cfg(debug_assertions)]
    fn over_refund_trips_the_drift_assert() {
        let (b, mut m) = setup();
        let f = cf(&b, &[]);
        m.add(&f, 0.01);
        m.sub(&f, 1.0);
    }
}
