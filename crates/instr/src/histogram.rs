//! Paradyn-style time histograms with bucket folding.
//!
//! Paradyn stores each metric-focus pair's data as a fixed-size array of
//! time buckets covering the run from t = 0. When the run outgrows the
//! array, adjacent buckets are *folded* (pairwise summed) and the bucket
//! width doubles, so a bounded amount of memory covers an arbitrarily long
//! execution at progressively coarser resolution.

use histpc_sim::{SimDuration, SimTime};

/// A fixed-capacity time histogram of a value accumulated over a run.
#[derive(Debug, Clone)]
pub struct TimeHistogram {
    buckets: Vec<f64>,
    /// Current bucket width in microseconds.
    width_us: u64,
    /// Number of folds performed so far.
    folds: u32,
}

impl TimeHistogram {
    /// Creates a histogram with `capacity` buckets of `initial_width`.
    pub fn new(capacity: usize, initial_width: SimDuration) -> TimeHistogram {
        assert!(capacity >= 2, "need at least two buckets");
        assert!(capacity.is_multiple_of(2), "capacity must be even to fold");
        assert!(!initial_width.is_zero(), "width must be nonzero");
        TimeHistogram {
            buckets: vec![0.0; capacity],
            width_us: initial_width.as_micros(),
            folds: 0,
        }
    }

    /// Default Paradyn-ish sizing: 480 buckets of 200 ms (covers 96 s
    /// before the first fold).
    pub fn standard() -> TimeHistogram {
        TimeHistogram::new(480, SimDuration::from_millis(200))
    }

    /// Current bucket width.
    pub fn bucket_width(&self) -> SimDuration {
        SimDuration(self.width_us)
    }

    /// Number of folds performed.
    pub fn folds(&self) -> u32 {
        self.folds
    }

    /// The end of the covered span at the current width.
    pub fn span_end(&self) -> SimTime {
        SimTime(self.width_us * self.buckets.len() as u64)
    }

    /// Adds `amount` of value spread uniformly over `[start, end)`,
    /// folding as needed so the span fits.
    pub fn add(&mut self, start: SimTime, end: SimTime, amount: f64) {
        if end <= start || amount == 0.0 {
            return;
        }
        while end > self.span_end() {
            self.fold();
        }
        let (s, e) = (start.as_micros(), end.as_micros());
        let total = (e - s) as f64;
        let first = (s / self.width_us) as usize;
        let last = ((e - 1) / self.width_us) as usize;
        for b in first..=last {
            let b_start = b as u64 * self.width_us;
            let b_end = b_start + self.width_us;
            let overlap = (e.min(b_end) - s.max(b_start)) as f64;
            self.buckets[b] += amount * overlap / total;
        }
    }

    /// Pairwise-sums adjacent buckets and doubles the width.
    fn fold(&mut self) {
        let n = self.buckets.len();
        for i in 0..n / 2 {
            self.buckets[i] = self.buckets[2 * i] + self.buckets[2 * i + 1];
        }
        for b in &mut self.buckets[n / 2..] {
            *b = 0.0;
        }
        self.width_us *= 2;
        self.folds += 1;
    }

    /// Total value accumulated in `[from, to)`, assuming uniform
    /// distribution within buckets.
    pub fn sum(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let (s, e) = (
            from.as_micros(),
            to.as_micros().min(self.span_end().as_micros()),
        );
        if e <= s {
            return 0.0;
        }
        let first = (s / self.width_us) as usize;
        let last = ((e - 1) / self.width_us) as usize;
        let mut acc = 0.0;
        for b in first..=last.min(self.buckets.len() - 1) {
            let b_start = b as u64 * self.width_us;
            let b_end = b_start + self.width_us;
            let overlap = (e.min(b_end) - s.max(b_start)) as f64;
            acc += self.buckets[b] * overlap / self.width_us as f64;
        }
        acc
    }

    /// Total value over the whole histogram.
    pub fn total(&self) -> f64 {
        self.buckets.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> TimeHistogram {
        // 8 buckets of 1 ms.
        TimeHistogram::new(8, SimDuration::from_millis(1))
    }

    #[test]
    fn add_within_one_bucket() {
        let mut hist = h();
        hist.add(SimTime(100), SimTime(600), 2.0);
        assert!((hist.total() - 2.0).abs() < 1e-9);
        assert!((hist.sum(SimTime(0), SimTime(1000)) - 2.0).abs() < 1e-9);
        assert_eq!(hist.sum(SimTime(1000), SimTime(2000)), 0.0);
    }

    #[test]
    fn add_spreads_across_buckets_proportionally() {
        let mut hist = h();
        // 3 ms interval spanning buckets 1,2,3 equally.
        hist.add(SimTime(1000), SimTime(4000), 3.0);
        for b in 1..=3u64 {
            let v = hist.sum(SimTime(b * 1000), SimTime((b + 1) * 1000));
            assert!((v - 1.0).abs() < 1e-9, "bucket {b} had {v}");
        }
    }

    #[test]
    fn partial_bucket_queries_interpolate() {
        let mut hist = h();
        hist.add(SimTime(0), SimTime(1000), 4.0);
        let v = hist.sum(SimTime(250), SimTime(750));
        assert!((v - 2.0).abs() < 1e-9, "half-bucket sum was {v}");
    }

    #[test]
    fn folding_preserves_totals() {
        let mut hist = h(); // spans 8 ms initially
        hist.add(SimTime(0), SimTime(8000), 8.0);
        assert_eq!(hist.folds(), 0);
        // Past the span: forces a fold to 2 ms buckets (16 ms span).
        hist.add(SimTime(9000), SimTime(10000), 1.0);
        assert_eq!(hist.folds(), 1);
        assert_eq!(hist.bucket_width(), SimDuration::from_millis(2));
        assert!((hist.total() - 9.0).abs() < 1e-9);
        // The early data is still queryable at coarser resolution.
        let early = hist.sum(SimTime(0), SimTime(8000));
        assert!((early - 8.0).abs() < 1e-9, "early sum was {early}");
    }

    #[test]
    fn multiple_folds() {
        let mut hist = h();
        hist.add(SimTime(0), SimTime(1000), 1.0);
        hist.add(SimTime(60_000), SimTime(64_000), 4.0); // needs 64 ms span
        assert_eq!(hist.folds(), 3); // 8 -> 16 -> 32 -> 64 ms
        assert!((hist.total() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_or_reversed_ranges_are_noops() {
        let mut hist = h();
        hist.add(SimTime(500), SimTime(500), 1.0);
        hist.add(SimTime(600), SimTime(400), 1.0);
        assert_eq!(hist.total(), 0.0);
        assert_eq!(hist.sum(SimTime(500), SimTime(500)), 0.0);
    }

    #[test]
    fn standard_dimensions() {
        let hist = TimeHistogram::standard();
        assert_eq!(hist.bucket_width(), SimDuration::from_millis(200));
        assert_eq!(hist.span_end(), SimTime::from_secs(96));
    }
}
