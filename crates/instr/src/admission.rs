//! Overload admission control for the instrumentation layer.
//!
//! The paper's Performance Consultant already budgets its own
//! *perturbation* (the §4.1 cost model); this module budgets the tool's
//! *capacity*: how many instrumentation requests may be in flight at the
//! daemon at once, and how many sample-interval units the collector will
//! process per driver batch. When either bound is hit the excess is shed
//! rather than queued without limit, and per-process circuit breakers
//! turn sustained trouble into a first-class [`Saturated`] signal the
//! search can act on — analogous to how the cost model turns perturbation
//! into halt/resume decisions.
//!
//! Everything here is disabled by default ([`AdmissionConfig::enabled`] is
//! `false`), and every entry point is a no-op in that case, so the
//! zero-pressure path stays bit-identical to a build without this module.
//!
//! [`Saturated`]: AdmitVerdict::Saturated

use histpc_sim::{ProcId, SimDuration, SimTime};

/// Admission-control tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Master switch. Off by default: requests are always granted and
    /// batches are never trimmed, exactly the pre-admission behaviour.
    pub enabled: bool,
    /// Maximum instrumentation requests in flight at the daemon (granted
    /// but not yet active). Phantom load injected by request storms
    /// occupies the same slots.
    pub max_in_flight: usize,
    /// Sample-interval units the collector processes per driver batch;
    /// real intervals beyond the budget are shed (highest process ranks
    /// first), and injected flood units consume headroom above the real
    /// stream.
    pub sample_budget: u64,
    /// A granted request whose activation latency (insertion delay plus
    /// any injected deferral) exceeds this deadline counts as a timeout
    /// strike against the processes it targets.
    pub deadline: SimDuration,
    /// Consecutive strikes (request timeouts/failures/sheds, or batches
    /// with shed samples) that open a process's circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks before half-opening to admit a
    /// probe request.
    pub breaker_cooldown: SimDuration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            enabled: false,
            // Comfortably above the consultant's natural expansion bursts
            // (refining a true node requests every child in one tick), so
            // an unloaded search never brushes the bound; request storms
            // and deferral pile-ups do.
            max_in_flight: 64,
            sample_budget: 4096,
            deadline: SimDuration::from_millis(500),
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(2),
        }
    }
}

impl AdmissionConfig {
    /// The default knobs with admission switched on.
    pub fn enabled() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            ..AdmissionConfig::default()
        }
    }

    /// Parses a `--admission` CLI value: `on` (defaults) or a
    /// comma-separated knob list like
    /// `max-in-flight=8,sample-budget=512,deadline-ms=250,strikes=3,cooldown-ms=2000`.
    pub fn parse_knobs(s: &str) -> Result<AdmissionConfig, String> {
        let mut config = AdmissionConfig::enabled();
        if s == "on" {
            return Ok(config);
        }
        for knob in s.split(',') {
            let (key, value) = knob
                .split_once('=')
                .ok_or_else(|| format!("admission knob '{knob}' is not key=value"))?;
            let uint = || {
                value
                    .parse::<u64>()
                    .map_err(|e| format!("admission knob '{key}': {e}"))
            };
            match key {
                "max-in-flight" => {
                    let v = uint()?;
                    if v == 0 {
                        return Err("max-in-flight must be at least 1".into());
                    }
                    config.max_in_flight = v as usize;
                }
                "sample-budget" => {
                    let v = uint()?;
                    if v == 0 {
                        return Err("sample-budget must be at least 1".into());
                    }
                    config.sample_budget = v;
                }
                "deadline-ms" => config.deadline = SimDuration::from_millis(uint()?),
                "strikes" => {
                    let v = uint()?;
                    if v == 0 {
                        return Err("strikes must be at least 1".into());
                    }
                    config.breaker_threshold = v as u32;
                }
                "cooldown-ms" => config.breaker_cooldown = SimDuration::from_millis(uint()?),
                _ => return Err(format!("unknown admission knob '{key}'")),
            }
        }
        Ok(config)
    }
}

/// What kind of work a request backs, for priority shedding: requests
/// backing active SHG nodes (persistent pairs, High-priority directives)
/// keep the full slot pool, speculative refinement probes only get the
/// unreserved share and are therefore shed first under pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// A pair backing an active node: persistent or High priority.
    Backing,
    /// A speculative refinement probe.
    Refinement,
}

/// The admission controller's answer to one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitVerdict {
    /// Admitted; the caller may insert the pair.
    Grant,
    /// No capacity right now; retry later (transient).
    Shed,
    /// Every process the request targets is behind an open circuit
    /// breaker: the experiment cannot be honestly served while the node
    /// is saturated (terminal for the requesting experiment).
    Saturated,
}

/// Counters of everything the admission layer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests granted through the controller.
    pub admitted: u64,
    /// Requests shed for lack of in-flight capacity.
    pub shed_requests: u64,
    /// Sample-interval units shed by the per-batch budget (real and
    /// injected flood units combined).
    pub shed_samples: u64,
    /// Requests refused because the whole focus was saturated.
    pub saturated_refusals: u64,
    /// Circuit breakers opened.
    pub breaker_opens: u64,
    /// Breakers closed again by a successful half-open probe.
    pub breaker_readmits: u64,
    /// Highest simultaneous in-flight occupancy observed (real grants
    /// plus phantom storm load). Never exceeds `max_in_flight`.
    pub peak_in_flight: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// Per-process health tracking. Two independent strike counters feed the
/// breaker — request-path trouble (timeouts, injected failures, sheds)
/// and sample-path trouble (batches that shed the process's data) — so
/// quiet intervals on one path don't mask sustained trouble on the other.
#[derive(Debug, Clone)]
struct Breaker {
    state: BreakerState,
    request_strikes: u32,
    shed_streak: u32,
    opened_at: SimTime,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            request_strikes: 0,
            shed_streak: 0,
            opened_at: SimTime::ZERO,
        }
    }

    /// Open breakers block until the cooldown elapses; the transition to
    /// half-open happens in [`AdmissionController::tick`].
    fn is_blocking(&self) -> bool {
        self.state == BreakerState::Open
    }
}

/// Bounded admission with per-process circuit breakers.
///
/// Owned by the collector; all methods are no-ops (or constant answers)
/// when the config is disabled, preserving bit-identical behaviour.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Activation times of granted requests still in flight at the
    /// daemon; an entry expires once `now` reaches it.
    in_flight: Vec<SimTime>,
    /// Expiry times of phantom requests injected by request storms.
    phantom: Vec<SimTime>,
    breakers: Vec<Breaker>,
    /// Flood units announced for the next batch.
    pending_phantom_samples: u64,
    /// Whether the most recent batch shed anything (pressure signal).
    shed_last_batch: bool,
    /// Process indices whose breaker opened and has not been drained by
    /// the consultant yet.
    newly_saturated: Vec<usize>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller for `proc_count` processes.
    pub fn new(config: AdmissionConfig, proc_count: usize) -> AdmissionController {
        AdmissionController {
            config,
            in_flight: Vec::new(),
            phantom: Vec::new(),
            breakers: vec![Breaker::new(); proc_count],
            pending_phantom_samples: 0,
            shed_last_batch: false,
            newly_saturated: Vec::new(),
            stats: AdmissionStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Everything the controller did so far.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Current in-flight occupancy (real grants plus phantom load).
    pub fn in_flight_now(&self) -> usize {
        self.in_flight.len() + self.phantom.len()
    }

    /// Housekeeping at time `now`: expires completed in-flight entries
    /// and phantom load, and half-opens breakers whose cooldown elapsed.
    pub fn tick(&mut self, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        self.in_flight.retain(|&active_from| now < active_from);
        self.phantom.retain(|&expires| now < expires);
        for b in &mut self.breakers {
            if b.state == BreakerState::Open && now >= b.opened_at + self.config.breaker_cooldown {
                b.state = BreakerState::HalfOpen;
            }
        }
    }

    /// Decides one instrumentation request targeting `procs` at `now`.
    /// Callers must follow a `Grant` with [`AdmissionController::note_granted`].
    pub fn admit(&mut self, procs: &[ProcId], class: RequestClass, now: SimTime) -> AdmitVerdict {
        if !self.config.enabled {
            return AdmitVerdict::Grant;
        }
        self.tick(now);
        // Saturation mirrors the unreachable rule: only when *every*
        // process the focus covers is behind an open breaker is the
        // experiment hopeless; a half-open breaker admits probes.
        if !procs.is_empty()
            && procs
                .iter()
                .all(|p| self.breakers[p.0 as usize].is_blocking())
        {
            self.stats.saturated_refusals += 1;
            return AdmitVerdict::Saturated;
        }
        // Refinement probes only see the unreserved share of the slot
        // pool, so under pressure they shed first while pairs backing
        // active nodes keep flowing.
        let reserve = (self.config.max_in_flight / 4).max(1);
        let limit = match class {
            RequestClass::Backing => self.config.max_in_flight,
            RequestClass::Refinement => self.config.max_in_flight.saturating_sub(reserve),
        };
        if self.in_flight_now() >= limit {
            self.stats.shed_requests += 1;
            // A shed is only attributable evidence when the request
            // targets a single process.
            if let [p] = procs {
                self.request_strike(p.0 as usize, now);
            }
            return AdmitVerdict::Shed;
        }
        AdmitVerdict::Grant
    }

    /// Records a granted request that will activate at `active_from`.
    /// Prompt activation is health evidence (closes half-open breakers);
    /// activation past the deadline is a timeout strike.
    pub fn note_granted(&mut self, procs: &[ProcId], active_from: SimTime, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        self.stats.admitted += 1;
        self.in_flight.push(active_from);
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight_now());
        let late = active_from > now + self.config.deadline;
        if let [p] = procs {
            if late {
                self.request_strike(p.0 as usize, now);
            } else {
                self.request_success(p.0 as usize);
            }
        }
    }

    /// Records an injected daemon failure for a request targeting `procs`.
    pub fn note_failed(&mut self, procs: &[ProcId], now: SimTime) {
        if !self.config.enabled {
            return;
        }
        if let [p] = procs {
            self.request_strike(p.0 as usize, now);
        }
    }

    /// Announces injected flood units for the next batch's budget check.
    pub fn note_phantom_samples(&mut self, units: u64) {
        if !self.config.enabled {
            return;
        }
        self.pending_phantom_samples += units;
    }

    /// Absorbs `n` phantom requests from an injected request storm; each
    /// occupies an in-flight slot for one deadline. Load beyond the slot
    /// pool is dropped at the door (the bound holds regardless).
    pub fn absorb_storm(&mut self, n: u64, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        self.tick(now);
        for _ in 0..n {
            if self.in_flight_now() >= self.config.max_in_flight {
                break;
            }
            self.phantom.push(now + self.config.deadline);
        }
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight_now());
    }

    /// Applies the per-batch sample budget to a batch of `real` interval
    /// units. Returns `None` when the whole batch fits (disabled, or under
    /// budget), or `Some(keep)` — how many real units to process, the
    /// rest shed. Pending flood units consume headroom above the real
    /// stream but never displace real data below the budget.
    pub fn sample_quota(&mut self, real: u64) -> Option<u64> {
        if !self.config.enabled {
            return None;
        }
        let phantom = std::mem::take(&mut self.pending_phantom_samples);
        let units = real + phantom;
        if units <= self.config.sample_budget {
            self.shed_last_batch = false;
            return None;
        }
        self.shed_last_batch = true;
        self.stats.shed_samples += units - self.config.sample_budget;
        let keep = real.min(self.config.sample_budget);
        if keep == real {
            None
        } else {
            Some(keep)
        }
    }

    /// Records that a batch shed data of process `p` (one strike on the
    /// sample path).
    pub fn note_batch_shed(&mut self, p: ProcId, now: SimTime) {
        if !self.config.enabled {
            return;
        }
        let b = &mut self.breakers[p.0 as usize];
        b.shed_streak += 1;
        if b.shed_streak >= self.config.breaker_threshold {
            self.trip(p.0 as usize, now);
        }
    }

    /// Records that a batch delivered process `p`'s data unshed (resets
    /// the sample-path streak; request-path health is judged separately).
    pub fn note_batch_ok(&mut self, p: ProcId) {
        if !self.config.enabled {
            return;
        }
        self.breakers[p.0 as usize].shed_streak = 0;
    }

    /// Process indices currently behind an open (blocking) breaker.
    pub fn blocked_procs(&self) -> Vec<ProcId> {
        self.breakers
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_blocking())
            .map(|(i, _)| ProcId(i as u16))
            .collect()
    }

    /// True if any breaker is currently open.
    pub fn any_breaker_open(&self) -> bool {
        self.config.enabled && self.breakers.iter().any(|b| b.is_blocking())
    }

    /// Drains the processes whose breaker opened since the last drain
    /// (for surfacing saturated resources in the report).
    pub fn drain_newly_saturated(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.newly_saturated)
    }

    /// The backpressure signal: the search should stop fanning out
    /// refinement probes while this holds.
    pub fn under_pressure(&self) -> bool {
        self.config.enabled
            && (self.in_flight_now() >= self.config.max_in_flight
                || self.shed_last_batch
                || self.breakers.iter().any(|b| b.is_blocking()))
    }

    /// The resume signal, with hysteresis below the pressure threshold
    /// (mirroring the cost model's halt/resume split): occupancy at half
    /// the pool or less, no shed in the last batch, no open breaker.
    pub fn drained(&self) -> bool {
        !self.config.enabled
            || (self.in_flight_now() <= self.config.max_in_flight / 2
                && !self.shed_last_batch
                && !self.breakers.iter().any(|b| b.is_blocking()))
    }

    fn request_strike(&mut self, p: usize, now: SimTime) {
        let b = &mut self.breakers[p];
        if b.state == BreakerState::HalfOpen {
            // The probe failed: straight back to open.
            b.state = BreakerState::Open;
            b.opened_at = now;
            return;
        }
        b.request_strikes += 1;
        if b.request_strikes >= self.config.breaker_threshold {
            self.trip(p, now);
        }
    }

    fn request_success(&mut self, p: usize) {
        let b = &mut self.breakers[p];
        if b.state == BreakerState::HalfOpen {
            b.state = BreakerState::Closed;
            self.stats.breaker_readmits += 1;
        }
        b.request_strikes = 0;
    }

    fn trip(&mut self, p: usize, now: SimTime) {
        let b = &mut self.breakers[p];
        if b.state == BreakerState::Open {
            return;
        }
        b.state = BreakerState::Open;
        b.opened_at = now;
        b.request_strikes = 0;
        b.shed_streak = 0;
        self.stats.breaker_opens += 1;
        if !self.newly_saturated.contains(&p) {
            self.newly_saturated.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            max_in_flight: 4,
            sample_budget: 10,
            deadline: SimDuration::from_millis(500),
            breaker_threshold: 2,
            breaker_cooldown: SimDuration::from_secs(1),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_controller_always_grants_and_counts_nothing() {
        let mut a = AdmissionController::new(AdmissionConfig::default(), 2);
        for _ in 0..100 {
            assert_eq!(
                a.admit(&[ProcId(0)], RequestClass::Refinement, t(0)),
                AdmitVerdict::Grant
            );
            a.note_granted(&[ProcId(0)], t(10_000), t(0));
        }
        a.note_phantom_samples(1_000_000);
        a.absorb_storm(1_000_000, t(0));
        assert_eq!(a.sample_quota(5), None);
        assert_eq!(a.stats(), &AdmissionStats::default());
        assert!(!a.under_pressure());
        assert!(a.drained());
    }

    #[test]
    fn in_flight_bound_sheds_refinement_before_backing() {
        let mut a = AdmissionController::new(tight(), 2);
        // Pool of 4, reserve 1: refinement sees 3 slots.
        for _ in 0..3 {
            assert_eq!(
                a.admit(&[], RequestClass::Refinement, t(0)),
                AdmitVerdict::Grant
            );
            a.note_granted(&[], t(80), t(0));
        }
        assert_eq!(
            a.admit(&[], RequestClass::Refinement, t(0)),
            AdmitVerdict::Shed
        );
        // Backing still gets the reserved slot.
        assert_eq!(
            a.admit(&[], RequestClass::Backing, t(0)),
            AdmitVerdict::Grant
        );
        a.note_granted(&[], t(80), t(0));
        assert_eq!(
            a.admit(&[], RequestClass::Backing, t(0)),
            AdmitVerdict::Shed
        );
        assert!(a.under_pressure());
        assert_eq!(a.stats().peak_in_flight, 4);
        assert_eq!(a.stats().shed_requests, 2);
        // Entries expire at their activation time; capacity returns.
        assert_eq!(
            a.admit(&[], RequestClass::Refinement, t(100)),
            AdmitVerdict::Grant
        );
    }

    #[test]
    fn storm_load_occupies_slots_but_respects_the_bound() {
        let mut a = AdmissionController::new(tight(), 2);
        a.absorb_storm(100, t(0));
        assert_eq!(a.in_flight_now(), 4);
        assert_eq!(a.stats().peak_in_flight, 4);
        assert_eq!(
            a.admit(&[], RequestClass::Backing, t(0)),
            AdmitVerdict::Shed
        );
        // Phantom load expires after one deadline.
        assert_eq!(
            a.admit(&[], RequestClass::Backing, t(600)),
            AdmitVerdict::Grant
        );
    }

    #[test]
    fn sample_budget_sheds_above_real_but_flood_consumes_headroom() {
        let mut a = AdmissionController::new(tight(), 2);
        // Under budget: untouched.
        assert_eq!(a.sample_quota(10), None);
        assert!(!a.under_pressure());
        // Flood above budget but real fits: keep all real, shed phantom.
        a.note_phantom_samples(90);
        assert_eq!(a.sample_quota(8), None);
        assert!(a.under_pressure());
        assert_eq!(a.stats().shed_samples, 88);
        // Real alone above budget: trim to the budget.
        assert_eq!(a.sample_quota(14), Some(10));
        assert_eq!(a.stats().shed_samples, 92);
    }

    #[test]
    fn consecutive_strikes_open_then_halfopen_then_readmit() {
        let mut a = AdmissionController::new(tight(), 2);
        let p = ProcId(1);
        a.note_failed(&[p], t(0));
        assert!(!a.any_breaker_open());
        a.note_failed(&[p], t(100));
        assert!(a.any_breaker_open());
        assert_eq!(a.blocked_procs(), vec![p]);
        assert_eq!(a.drain_newly_saturated(), vec![1]);
        assert!(a.drain_newly_saturated().is_empty());
        // While open, a single-proc request for p is refused as saturated.
        assert_eq!(
            a.admit(&[p], RequestClass::Backing, t(200)),
            AdmitVerdict::Saturated
        );
        // A multi-proc request with a healthy peer is not.
        assert_eq!(
            a.admit(&[ProcId(0), p], RequestClass::Backing, t(200)),
            AdmitVerdict::Grant
        );
        // After the cooldown the breaker half-opens and admits a probe;
        // a prompt grant closes it.
        assert_eq!(
            a.admit(&[p], RequestClass::Backing, t(1200)),
            AdmitVerdict::Grant
        );
        a.note_granted(&[p], t(1280), t(1200));
        assert!(!a.any_breaker_open());
        assert_eq!(a.stats().breaker_readmits, 1);
        assert_eq!(a.stats().breaker_opens, 1);
    }

    #[test]
    fn failed_halfopen_probe_reopens() {
        let mut a = AdmissionController::new(tight(), 1);
        let p = ProcId(0);
        a.note_failed(&[p], t(0));
        a.note_failed(&[p], t(100));
        assert!(a.any_breaker_open());
        a.tick(t(1200)); // cooldown elapsed: half-open
        assert!(!a.any_breaker_open());
        a.note_failed(&[p], t(1200));
        // One probe failure reopens immediately, no threshold.
        assert!(a.any_breaker_open());
        // And the new cooldown counts from the reopen.
        a.tick(t(1500));
        assert!(a.any_breaker_open());
        a.tick(t(2300));
        assert!(!a.any_breaker_open());
    }

    #[test]
    fn shed_batches_trip_and_clean_batches_reset() {
        let mut a = AdmissionController::new(tight(), 2);
        let p = ProcId(1);
        a.note_batch_shed(p, t(100));
        a.note_batch_ok(p);
        a.note_batch_shed(p, t(300));
        assert!(!a.any_breaker_open(), "reset streak must not trip");
        a.note_batch_shed(p, t(400));
        assert!(a.any_breaker_open());
    }

    #[test]
    fn pressure_and_drain_hysteresis() {
        let mut a = AdmissionController::new(tight(), 1);
        assert!(!a.under_pressure());
        assert!(a.drained());
        for _ in 0..4 {
            assert_eq!(
                a.admit(&[], RequestClass::Backing, t(0)),
                AdmitVerdict::Grant
            );
            a.note_granted(&[], t(80), t(0));
        }
        assert!(a.under_pressure());
        assert!(!a.drained());
        // At 3 of 4 slots: no longer at the cap, but not drained either.
        a.in_flight.truncate(3);
        assert!(!a.under_pressure());
        assert!(!a.drained());
        a.in_flight.truncate(2);
        assert!(a.drained());
    }

    #[test]
    fn knob_parsing_round_trips_values_and_rejects_garbage() {
        let c = AdmissionConfig::parse_knobs("on").unwrap();
        assert!(c.enabled);
        assert_eq!(c.max_in_flight, AdmissionConfig::default().max_in_flight);
        let c = AdmissionConfig::parse_knobs(
            "max-in-flight=8,sample-budget=512,deadline-ms=250,strikes=5,cooldown-ms=1500",
        )
        .unwrap();
        assert!(c.enabled);
        assert_eq!(c.max_in_flight, 8);
        assert_eq!(c.sample_budget, 512);
        assert_eq!(c.deadline, SimDuration::from_millis(250));
        assert_eq!(c.breaker_threshold, 5);
        assert_eq!(c.breaker_cooldown, SimDuration::from_millis(1500));
        for bad in [
            "max-in-flight",
            "max-in-flight=0",
            "sample-budget=0",
            "strikes=0",
            "strikes=many",
            "turbo=1",
        ] {
            assert!(AdmissionConfig::parse_knobs(bad).is_err(), "{bad}");
        }
    }
}
