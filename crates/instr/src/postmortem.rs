//! Postmortem, full-resolution metric evaluation.
//!
//! The paper's future-work section describes extracting search directives
//! "where results in the form of a Search History Graph from a previous PC
//! run are not available, but we do have the raw data needed to test
//! hypotheses postmortem". [`PostmortemData`] is that raw-data path: it
//! evaluates any (metric, focus) against the full-resolution trace totals
//! of a completed (or partially completed) run. It is also how the
//! benchmark harness establishes the ground-truth "100% of true
//! bottlenecks" set for Table 1.

use crate::binder::Binder;
use crate::metric::Metric;
use histpc_resources::{Focus, ResourceSpace};
use histpc_sim::{ActivityKind, AppSpec, FuncId, ProcId, SimTime, TagId, TraceAccumulator};

/// One aggregated trace entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    proc: ProcId,
    func: FuncId,
    kind: ActivityKind,
    tag: Option<TagId>,
    seconds: f64,
}

/// Ground-truth metric data for a completed run.
#[derive(Debug, Clone)]
pub struct PostmortemData {
    binder: Binder,
    space: ResourceSpace,
    entries: Vec<Entry>,
    msgs: Vec<(ProcId, TagId, u64, u64)>,
    end_time: SimTime,
}

impl PostmortemData {
    /// Captures the ground truth of a run from the engine's accumulator.
    pub fn from_totals(app: AppSpec, totals: &TraceAccumulator) -> PostmortemData {
        let binder = Binder::new(app.clone());
        let mut space = binder.build_space();
        let mut entries = Vec::new();
        let mut seen_tags = vec![false; app.tags.len()];
        for (key, dur) in totals.iter() {
            entries.push(Entry {
                proc: key.proc,
                func: key.func,
                kind: key.kind,
                tag: key.tag,
                seconds: dur.as_secs_f64(),
            });
            if let Some(tag) = key.tag {
                let idx = tag.0 as usize;
                if idx < seen_tags.len() && !seen_tags[idx] {
                    seen_tags[idx] = true;
                    space
                        .add_resource(&binder.tag_name(tag))
                        .expect("valid tag resource");
                }
            }
        }
        let mut msgs = Vec::new();
        for (t, &seen) in seen_tags.iter().enumerate() {
            if !seen {
                continue;
            }
            for p in 0..app.process_count() {
                let proc = ProcId(p as u16);
                let tag = TagId(t as u16);
                let count = totals.msg_count(proc, tag);
                if count > 0 {
                    msgs.push((proc, tag, count, totals.msg_byte_total(proc, tag)));
                }
            }
        }
        PostmortemData {
            binder,
            space,
            entries,
            msgs,
            end_time: totals.end_time(),
        }
    }

    /// The full resource space observed by the run (all tags included).
    pub fn space(&self) -> &ResourceSpace {
        &self.space
    }

    /// The application's binder.
    pub fn binder(&self) -> &Binder {
        &self.binder
    }

    /// The run's wall-clock end (per-process max).
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// Evaluates a metric over a focus for the whole run: seconds for
    /// time metrics, counts/bytes for event metrics.
    pub fn value(&self, metric: Metric, focus: &Focus) -> f64 {
        let compiled = self.binder.compile(focus);
        match metric {
            Metric::CpuTime
            | Metric::SyncWaitTime
            | Metric::MsgWaitTime
            | Metric::BarrierWaitTime
            | Metric::IoWaitTime => {
                let kind = match metric {
                    Metric::CpuTime => ActivityKind::Cpu,
                    Metric::IoWaitTime => ActivityKind::IoWait,
                    _ => ActivityKind::SyncWait,
                };
                self.entries
                    .iter()
                    .filter(|e| e.kind == kind)
                    .filter(|e| match metric {
                        Metric::MsgWaitTime => e.tag.is_some(),
                        Metric::BarrierWaitTime => e.tag.is_none(),
                        _ => true,
                    })
                    .filter(|e| compiled.matches_parts(e.proc, e.func, e.tag, &self.binder))
                    .map(|e| e.seconds)
                    .sum()
            }
            Metric::MsgCount => self
                .msgs
                .iter()
                .filter(|(p, t, _, _)| compiled.matches_code_free(*p, Some(*t), &self.binder))
                .map(|(_, _, c, _)| *c as f64)
                .sum(),
            Metric::MsgBytes => self
                .msgs
                .iter()
                .filter(|(p, t, _, _)| compiled.matches_code_free(*p, Some(*t), &self.binder))
                .map(|(_, _, _, b)| *b as f64)
                .sum(),
        }
    }

    /// A time metric as a fraction of total execution time under the
    /// focus: `value / (end_time * procs_in_focus)` — the normalization
    /// behind the paper's "% of total execution time" thresholds.
    pub fn fraction(&self, metric: Metric, focus: &Focus) -> f64 {
        let procs = self.binder.compile(focus).procs().len();
        if procs == 0 || self.end_time == SimTime::ZERO {
            return 0.0;
        }
        self.value(metric, focus) / (self.end_time.as_secs_f64() * procs as f64)
    }

    /// Renders the run's performance profile as a table: fractions of
    /// execution time spent computing and waiting, broken down the way
    /// the paper's §4.2 describes its application ("45% ... in exchng2,
    /// 20% in main; ... tags 3/0, 3/1, 3/-1; processes 3 and 4 are
    /// dominated by wait time...").
    pub fn render_profile(&self) -> String {
        let whole = self.space().whole_program();
        let mut out = String::new();
        out.push_str(&format!(
            "Profile of {} (version {}), {} of execution\n\n",
            self.binder.app().name,
            self.binder.app().version,
            self.end_time
        ));
        let pct = |v: f64| format!("{:>5.1}%", (v * 100.0).abs().max(0.0));
        out.push_str(&format!(
            "whole program: cpu {}  sync {}  io {}\n",
            pct(self.fraction(Metric::CpuTime, &whole)),
            pct(self.fraction(Metric::SyncWaitTime, &whole)),
            pct(self.fraction(Metric::IoWaitTime, &whole)),
        ));

        let mut section = |title: &str, hierarchy: &str, depth: usize| {
            out.push_str(&format!(
                "\n{title:<28} {:>7} {:>7} {:>7}\n",
                "cpu", "sync", "io"
            ));
            let names = self
                .space
                .hierarchy(hierarchy)
                .map(|h| h.all_names())
                .unwrap_or_default();
            for name in names.iter().filter(|n| n.depth() == depth) {
                let f = whole.with_selection(name.clone());
                let cpu = self.fraction(Metric::CpuTime, &f);
                let sync = self.fraction(Metric::SyncWaitTime, &f);
                let io = self.fraction(Metric::IoWaitTime, &f);
                if cpu + sync + io < 0.001 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:<26} {:>7} {:>7} {:>7}\n",
                    name.to_string(),
                    pct(cpu),
                    pct(sync),
                    pct(io)
                ));
            }
        };
        section("by function", histpc_resources::CODE, 2);
        section("by process", histpc_resources::PROCESS, 1);
        section("by message tag", histpc_resources::SYNC_OBJECT, 2);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_resources::ResourceName;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, Workload};

    fn data() -> PostmortemData {
        let wl = PoissonWorkload::new(PoissonVersion::C);
        let mut e = wl.build_engine();
        e.run_until(SimTime::from_secs(4));
        PostmortemData::from_totals(wl.app_spec(), e.totals())
    }

    #[test]
    fn whole_program_fractions_sum_to_about_one() {
        let d = data();
        let whole = d.space().whole_program();
        let cpu = d.fraction(Metric::CpuTime, &whole);
        let sync = d.fraction(Metric::SyncWaitTime, &whole);
        let io = d.fraction(Metric::IoWaitTime, &whole);
        let total = cpu + sync + io;
        assert!((0.9..=1.05).contains(&total), "total fraction {total}");
    }

    #[test]
    fn sync_fraction_is_dominant_for_poisson_c() {
        let d = data();
        let whole = d.space().whole_program();
        let sync = d.fraction(Metric::SyncWaitTime, &whole);
        assert!(sync > 0.5, "sync fraction {sync}");
    }

    #[test]
    fn exchange_function_carries_most_sync() {
        let d = data();
        let whole = d.space().whole_program();
        let exch = whole.with_selection(ResourceName::parse("/Code/exchng2.f/exchng2").unwrap());
        let sweep = whole.with_selection(ResourceName::parse("/Code/sweep2d.f/sweep2d").unwrap());
        let we = d.fraction(Metric::SyncWaitTime, &exch);
        let ws = d.fraction(Metric::SyncWaitTime, &sweep);
        assert!(we > ws, "exchng2 {we} vs sweep2d {ws}");
        assert!(we > 0.1);
    }

    #[test]
    fn space_includes_discovered_tags() {
        let d = data();
        for t in ["3_0", "3_1", "3_-1"] {
            let name = format!("/SyncObject/Message/{t}");
            assert!(
                d.space().contains(&ResourceName::parse(&name).unwrap()),
                "missing {name}"
            );
        }
    }

    #[test]
    fn per_process_fraction_normalizes_by_one_proc() {
        let d = data();
        let whole = d.space().whole_program();
        let p3 = whole.with_selection(ResourceName::parse("/Process/poisson:3").unwrap());
        let f = d.fraction(Metric::SyncWaitTime, &p3);
        // Rank 2 (poisson:3) is a light rank: it waits most of the time.
        assert!(f > 0.5, "light rank sync fraction {f}");
        assert!(f <= 1.01);
    }

    #[test]
    fn msg_metrics_positive_for_tags() {
        let d = data();
        let whole = d.space().whole_program();
        let tag = whole.with_selection(ResourceName::parse("/SyncObject/Message/3_0").unwrap());
        assert!(d.value(Metric::MsgCount, &tag) > 0.0);
        assert!(d.value(Metric::MsgBytes, &tag) > 0.0);
    }
}
