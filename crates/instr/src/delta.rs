//! Aggregated observation deltas.
//!
//! A long online diagnosis processes millions of engine intervals; feeding
//! each one to every active metric-focus pair would dominate the run time
//! of the *tool*, not the application. Within one driver step the
//! attribution key space is tiny (tens of distinct (process, function,
//! activity, tag) keys), so the collector first aggregates the step's
//! intervals into [`Delta`]s and feeds those to the pairs. Values are
//! spread uniformly over the delta's time span, a distortion bounded by
//! the driver's sampling step — far below the conclusion window.

use histpc_sim::{ActivityKind, FuncId, Interval, ProcId, SimTime, TagId};
use std::collections::HashMap;

/// One step's aggregate for a single attribution key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// Process.
    pub proc: ProcId,
    /// Function.
    pub func: FuncId,
    /// Activity kind.
    pub kind: ActivityKind,
    /// Message tag, if any.
    pub tag: Option<TagId>,
    /// Earliest interval start in the aggregate.
    pub start: SimTime,
    /// Latest interval end in the aggregate.
    pub end: SimTime,
    /// Total seconds of the activity.
    pub seconds: f64,
    /// Total message bytes.
    pub bytes: u64,
    /// Number of messages.
    pub msgs: u64,
}

/// Reusable dense aggregation state sized to one application's
/// attribution-key space.
///
/// [`aggregate`] hashes every interval; over a long run that hashing is
/// a measurable slice of the tool's own overhead. The aggregator
/// replaces the map with a flat slot table indexed by
/// `((proc * nfuncs + func) * 3 + kind) * (ntags + 1) + tagcode`,
/// reusing the allocation across batches. Results are identical to
/// [`aggregate`] (same per-key fold order, same output order).
#[derive(Debug)]
pub struct DeltaAggregator {
    nprocs: usize,
    nfuncs: usize,
    ntags: usize,
    slots: Vec<Delta>,
    live: Vec<bool>,
    touched: Vec<u32>,
}

impl DeltaAggregator {
    /// An aggregator for an app with the given dimensions.
    pub fn new(nprocs: usize, nfuncs: usize, ntags: usize) -> DeltaAggregator {
        let size = nprocs * nfuncs * 3 * (ntags + 1);
        let empty = Delta {
            proc: ProcId(0),
            func: FuncId(0),
            kind: ActivityKind::Cpu,
            tag: None,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
            seconds: 0.0,
            bytes: 0,
            msgs: 0,
        };
        DeltaAggregator {
            nprocs,
            nfuncs,
            ntags,
            slots: vec![empty; size],
            live: vec![false; size],
            touched: Vec::new(),
        }
    }

    fn index(&self, iv: &Interval) -> Option<usize> {
        let p = iv.proc.0 as usize;
        let f = iv.func.0 as usize;
        let t = match iv.tag {
            None => 0,
            Some(tag) => 1 + tag.0 as usize,
        };
        if p >= self.nprocs || f >= self.nfuncs || t > self.ntags {
            return None;
        }
        Some(((p * self.nfuncs + f) * 3 + iv.kind.index()) * (self.ntags + 1) + t)
    }

    /// Aggregates a batch, equivalent to [`aggregate`].
    pub fn aggregate(&mut self, intervals: &[Interval]) -> Vec<Delta> {
        for iv in intervals {
            let Some(i) = self.index(iv) else {
                // A key outside the app's tables (never produced by the
                // engine for its own app): take the general path.
                self.reset();
                return aggregate(intervals);
            };
            if !self.live[i] {
                self.live[i] = true;
                self.touched.push(i as u32);
                self.slots[i] = Delta {
                    proc: iv.proc,
                    func: iv.func,
                    kind: iv.kind,
                    tag: iv.tag,
                    start: iv.start,
                    end: iv.end,
                    seconds: 0.0,
                    bytes: 0,
                    msgs: 0,
                };
            }
            let e = &mut self.slots[i];
            e.start = e.start.min(iv.start);
            e.end = e.end.max(iv.end);
            e.seconds += iv.duration().as_secs_f64();
            if iv.tag.is_some() && iv.bytes > 0 {
                e.bytes += iv.bytes;
                e.msgs += 1;
            }
        }
        let mut out: Vec<Delta> = self
            .touched
            .iter()
            .map(|&i| self.slots[i as usize])
            .collect();
        out.sort_by_key(|d| (d.proc, d.func, d.kind, d.tag, d.start));
        self.reset();
        out
    }

    fn reset(&mut self) {
        for &i in &self.touched {
            self.live[i as usize] = false;
        }
        self.touched.clear();
    }
}

/// Aggregates a batch of intervals into deltas keyed by attribution.
pub fn aggregate(intervals: &[Interval]) -> Vec<Delta> {
    let mut map: HashMap<(ProcId, FuncId, ActivityKind, Option<TagId>), Delta> = HashMap::new();
    for iv in intervals {
        let key = (iv.proc, iv.func, iv.kind, iv.tag);
        let e = map.entry(key).or_insert(Delta {
            proc: iv.proc,
            func: iv.func,
            kind: iv.kind,
            tag: iv.tag,
            start: iv.start,
            end: iv.end,
            seconds: 0.0,
            bytes: 0,
            msgs: 0,
        });
        e.start = e.start.min(iv.start);
        e.end = e.end.max(iv.end);
        e.seconds += iv.duration().as_secs_f64();
        if iv.tag.is_some() && iv.bytes > 0 {
            e.bytes += iv.bytes;
            e.msgs += 1;
        }
    }
    let mut out: Vec<Delta> = map.into_values().collect();
    // Deterministic order for reproducible histograms.
    out.sort_by_key(|d| (d.proc, d.func, d.kind, d.tag, d.start));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(
        proc: u16,
        func: u16,
        kind: ActivityKind,
        tag: Option<u16>,
        s: u64,
        e: u64,
        b: u64,
    ) -> Interval {
        Interval {
            proc: ProcId(proc),
            func: FuncId(func),
            kind,
            tag: tag.map(TagId),
            start: SimTime(s),
            end: SimTime(e),
            bytes: b,
        }
    }

    #[test]
    fn groups_by_attribution_key() {
        let ivs = vec![
            iv(0, 1, ActivityKind::Cpu, None, 0, 100, 0),
            iv(0, 1, ActivityKind::Cpu, None, 200, 350, 0),
            iv(0, 2, ActivityKind::Cpu, None, 100, 200, 0),
            iv(1, 1, ActivityKind::SyncWait, Some(0), 0, 50, 64),
        ];
        let ds = aggregate(&ivs);
        assert_eq!(ds.len(), 3);
        let d = ds
            .iter()
            .find(|d| d.proc == ProcId(0) && d.func == FuncId(1))
            .unwrap();
        assert_eq!(d.start, SimTime(0));
        assert_eq!(d.end, SimTime(350));
        assert!((d.seconds - 250e-6).abs() < 1e-12);
        assert_eq!(d.msgs, 0);
        let m = ds.iter().find(|d| d.tag == Some(TagId(0))).unwrap();
        assert_eq!(m.msgs, 1);
        assert_eq!(m.bytes, 64);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(aggregate(&[]).is_empty());
    }

    #[test]
    fn dense_aggregator_matches_general_path() {
        let ivs = vec![
            iv(0, 1, ActivityKind::Cpu, None, 0, 100, 0),
            iv(1, 0, ActivityKind::SyncWait, Some(1), 10, 60, 32),
            iv(0, 1, ActivityKind::Cpu, None, 200, 350, 0),
            iv(1, 0, ActivityKind::SyncWait, Some(1), 60, 90, 32),
            iv(0, 2, ActivityKind::IoWait, None, 100, 200, 0),
            iv(1, 1, ActivityKind::SyncWait, None, 0, 50, 0),
        ];
        let mut agg = DeltaAggregator::new(2, 3, 2);
        assert_eq!(agg.aggregate(&ivs), aggregate(&ivs));
        // Reusable: a second batch through the same aggregator.
        assert_eq!(agg.aggregate(&ivs[..3]), aggregate(&ivs[..3]));
        assert!(agg.aggregate(&[]).is_empty());
    }

    #[test]
    fn dense_aggregator_spills_out_of_range_keys() {
        let ivs = vec![
            iv(0, 0, ActivityKind::Cpu, None, 0, 10, 0),
            iv(7, 9, ActivityKind::Cpu, None, 0, 10, 0),
        ];
        let mut agg = DeltaAggregator::new(1, 1, 0);
        assert_eq!(agg.aggregate(&ivs), aggregate(&ivs));
        // The spill must not leave stale state behind.
        assert_eq!(agg.aggregate(&ivs[..1]), aggregate(&ivs[..1]));
    }

    #[test]
    fn order_is_deterministic() {
        let ivs = vec![
            iv(1, 0, ActivityKind::Cpu, None, 0, 10, 0),
            iv(0, 0, ActivityKind::Cpu, None, 0, 10, 0),
        ];
        let a = aggregate(&ivs);
        let b = aggregate(&ivs);
        assert_eq!(a, b);
        assert_eq!(a[0].proc, ProcId(0));
    }
}
