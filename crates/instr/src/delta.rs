//! Aggregated observation deltas.
//!
//! A long online diagnosis processes millions of engine intervals; feeding
//! each one to every active metric-focus pair would dominate the run time
//! of the *tool*, not the application. Within one driver step the
//! attribution key space is tiny (tens of distinct (process, function,
//! activity, tag) keys), so the collector first aggregates the step's
//! intervals into [`Delta`]s and feeds those to the pairs. Values are
//! spread uniformly over the delta's time span, a distortion bounded by
//! the driver's sampling step — far below the conclusion window.

use histpc_sim::{ActivityKind, FuncId, Interval, ProcId, SimTime, TagId};
use std::collections::HashMap;

/// One step's aggregate for a single attribution key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delta {
    /// Process.
    pub proc: ProcId,
    /// Function.
    pub func: FuncId,
    /// Activity kind.
    pub kind: ActivityKind,
    /// Message tag, if any.
    pub tag: Option<TagId>,
    /// Earliest interval start in the aggregate.
    pub start: SimTime,
    /// Latest interval end in the aggregate.
    pub end: SimTime,
    /// Total seconds of the activity.
    pub seconds: f64,
    /// Total message bytes.
    pub bytes: u64,
    /// Number of messages.
    pub msgs: u64,
}

/// Aggregates a batch of intervals into deltas keyed by attribution.
pub fn aggregate(intervals: &[Interval]) -> Vec<Delta> {
    let mut map: HashMap<(ProcId, FuncId, ActivityKind, Option<TagId>), Delta> = HashMap::new();
    for iv in intervals {
        let key = (iv.proc, iv.func, iv.kind, iv.tag);
        let e = map.entry(key).or_insert(Delta {
            proc: iv.proc,
            func: iv.func,
            kind: iv.kind,
            tag: iv.tag,
            start: iv.start,
            end: iv.end,
            seconds: 0.0,
            bytes: 0,
            msgs: 0,
        });
        e.start = e.start.min(iv.start);
        e.end = e.end.max(iv.end);
        e.seconds += iv.duration().as_secs_f64();
        if iv.tag.is_some() && iv.bytes > 0 {
            e.bytes += iv.bytes;
            e.msgs += 1;
        }
    }
    let mut out: Vec<Delta> = map.into_values().collect();
    // Deterministic order for reproducible histograms.
    out.sort_by_key(|d| (d.proc, d.func, d.kind, d.tag, d.start));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(
        proc: u16,
        func: u16,
        kind: ActivityKind,
        tag: Option<u16>,
        s: u64,
        e: u64,
        b: u64,
    ) -> Interval {
        Interval {
            proc: ProcId(proc),
            func: FuncId(func),
            kind,
            tag: tag.map(TagId),
            start: SimTime(s),
            end: SimTime(e),
            bytes: b,
        }
    }

    #[test]
    fn groups_by_attribution_key() {
        let ivs = vec![
            iv(0, 1, ActivityKind::Cpu, None, 0, 100, 0),
            iv(0, 1, ActivityKind::Cpu, None, 200, 350, 0),
            iv(0, 2, ActivityKind::Cpu, None, 100, 200, 0),
            iv(1, 1, ActivityKind::SyncWait, Some(0), 0, 50, 64),
        ];
        let ds = aggregate(&ivs);
        assert_eq!(ds.len(), 3);
        let d = ds
            .iter()
            .find(|d| d.proc == ProcId(0) && d.func == FuncId(1))
            .unwrap();
        assert_eq!(d.start, SimTime(0));
        assert_eq!(d.end, SimTime(350));
        assert!((d.seconds - 250e-6).abs() < 1e-12);
        assert_eq!(d.msgs, 0);
        let m = ds.iter().find(|d| d.tag == Some(TagId(0))).unwrap();
        assert_eq!(m.msgs, 1);
        assert_eq!(m.bytes, 64);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(aggregate(&[]).is_empty());
    }

    #[test]
    fn order_is_deterministic() {
        let ivs = vec![
            iv(1, 0, ActivityKind::Cpu, None, 0, 10, 0),
            iv(0, 0, ActivityKind::Cpu, None, 0, 10, 0),
        ];
        let a = aggregate(&ivs);
        let b = aggregate(&ivs);
        assert_eq!(a, b);
        assert_eq!(a[0].proc, ProcId(0));
    }
}
