//! Metrics: continuously-measured values over a focus.
//!
//! Each Performance Consultant hypothesis is "based on a continuously
//! measured value computed by one or more Paradyn metrics" (paper §2).
//! Time metrics accumulate seconds of an activity; event metrics count
//! occurrences or bytes.

use histpc_sim::{ActivityKind, Interval};
use std::fmt;

/// A measurable quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Metric {
    /// CPU time (seconds).
    CpuTime,
    /// Synchronization waiting time (seconds): message waits, rendezvous,
    /// barriers, collective operations.
    SyncWaitTime,
    /// Message waiting time (seconds): the subset of synchronization
    /// waiting attributable to a message object (tagged waits).
    MsgWaitTime,
    /// Barrier/collective waiting time (seconds): the subset of
    /// synchronization waiting not attributable to any single message
    /// (barriers, mixed-tag completion waits).
    BarrierWaitTime,
    /// I/O blocking time (seconds).
    IoWaitTime,
    /// Number of messages (count).
    MsgCount,
    /// Message payload bytes moved (bytes).
    MsgBytes,
}

impl Metric {
    /// All metrics, in a stable order.
    pub const ALL: [Metric; 7] = [
        Metric::CpuTime,
        Metric::SyncWaitTime,
        Metric::MsgWaitTime,
        Metric::BarrierWaitTime,
        Metric::IoWaitTime,
        Metric::MsgCount,
        Metric::MsgBytes,
    ];

    /// Stable machine-readable name (used in directive and record files).
    pub fn name(self) -> &'static str {
        match self {
            Metric::CpuTime => "cpu_time",
            Metric::SyncWaitTime => "sync_wait_time",
            Metric::MsgWaitTime => "msg_wait_time",
            Metric::BarrierWaitTime => "barrier_wait_time",
            Metric::IoWaitTime => "io_wait_time",
            Metric::MsgCount => "msgs",
            Metric::MsgBytes => "msg_bytes",
        }
    }

    /// Parses the machine-readable name.
    pub fn from_name(name: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.name() == name)
    }

    /// True for metrics measured in seconds (usable as a fraction of
    /// execution time).
    pub fn is_time(self) -> bool {
        matches!(
            self,
            Metric::CpuTime
                | Metric::SyncWaitTime
                | Metric::MsgWaitTime
                | Metric::BarrierWaitTime
                | Metric::IoWaitTime
        )
    }

    /// The value this metric extracts from one interval: seconds for time
    /// metrics, a count or byte total for event metrics.
    pub fn extract(self, iv: &Interval) -> f64 {
        match self {
            Metric::CpuTime => match iv.kind {
                ActivityKind::Cpu => iv.duration().as_secs_f64(),
                _ => 0.0,
            },
            Metric::SyncWaitTime => match iv.kind {
                ActivityKind::SyncWait => iv.duration().as_secs_f64(),
                _ => 0.0,
            },
            Metric::MsgWaitTime => match iv.kind {
                ActivityKind::SyncWait if iv.tag.is_some() => iv.duration().as_secs_f64(),
                _ => 0.0,
            },
            Metric::BarrierWaitTime => match iv.kind {
                ActivityKind::SyncWait if iv.tag.is_none() => iv.duration().as_secs_f64(),
                _ => 0.0,
            },
            Metric::IoWaitTime => match iv.kind {
                ActivityKind::IoWait => iv.duration().as_secs_f64(),
                _ => 0.0,
            },
            Metric::MsgCount => {
                if iv.tag.is_some() && iv.bytes > 0 {
                    1.0
                } else {
                    0.0
                }
            }
            Metric::MsgBytes => {
                if iv.tag.is_some() {
                    iv.bytes as f64
                } else {
                    0.0
                }
            }
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::{FuncId, ProcId, SimTime, TagId};

    fn iv(kind: ActivityKind, tag: Option<u16>, dur_us: u64, bytes: u64) -> Interval {
        Interval {
            proc: ProcId(0),
            func: FuncId(0),
            kind,
            tag: tag.map(TagId),
            start: SimTime(1000),
            end: SimTime(1000 + dur_us),
            bytes,
        }
    }

    #[test]
    fn names_roundtrip() {
        for m in Metric::ALL {
            assert_eq!(Metric::from_name(m.name()), Some(m));
        }
        assert_eq!(Metric::from_name("bogus"), None);
    }

    #[test]
    fn time_metrics_extract_seconds_of_matching_kind() {
        let cpu = iv(ActivityKind::Cpu, None, 500_000, 0);
        assert!((Metric::CpuTime.extract(&cpu) - 0.5).abs() < 1e-9);
        assert_eq!(Metric::SyncWaitTime.extract(&cpu), 0.0);
        assert_eq!(Metric::IoWaitTime.extract(&cpu), 0.0);

        let sync = iv(ActivityKind::SyncWait, Some(1), 250_000, 64);
        assert!((Metric::SyncWaitTime.extract(&sync) - 0.25).abs() < 1e-9);
        assert_eq!(Metric::CpuTime.extract(&sync), 0.0);
    }

    #[test]
    fn event_metrics_extract_counts_and_bytes() {
        let msg = iv(ActivityKind::SyncWait, Some(0), 10, 128);
        assert_eq!(Metric::MsgCount.extract(&msg), 1.0);
        assert_eq!(Metric::MsgBytes.extract(&msg), 128.0);
        // A barrier wait (no tag) is not a message.
        let barrier = iv(ActivityKind::SyncWait, None, 10, 0);
        assert_eq!(Metric::MsgCount.extract(&barrier), 0.0);
        assert_eq!(Metric::MsgBytes.extract(&barrier), 0.0);
    }

    #[test]
    fn is_time_partitions_metrics() {
        assert!(Metric::CpuTime.is_time());
        assert!(Metric::SyncWaitTime.is_time());
        assert!(Metric::IoWaitTime.is_time());
        assert!(!Metric::MsgCount.is_time());
        assert!(!Metric::MsgBytes.is_time());
    }
}
