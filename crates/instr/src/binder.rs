//! Binding between simulator identifiers and resource names.
//!
//! The engine speaks in small ids (`ProcId`, `FuncId`, `TagId`); the
//! Performance Consultant speaks in resource names and foci. The
//! [`Binder`] builds the resource hierarchies for an application and
//! compiles a [`Focus`] into a fast interval predicate.

use histpc_resources::{Focus, ResourceName, ResourceSpace, CODE, MACHINE, PROCESS, SYNC_OBJECT};
use histpc_sim::{AppSpec, FuncId, Interval, ProcId, TagId};

/// Selection along the Code hierarchy, compiled for fast matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CodeSel {
    /// Hierarchy root: everything matches.
    All,
    /// A module: functions in that module match.
    Module(u16),
    /// A single function.
    Func(u16),
    /// The selection names no known resource: nothing matches.
    Nothing,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MachineSel {
    All,
    Node(u16),
    Nothing,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcSel {
    All,
    Proc(u16),
    Nothing,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SyncSel {
    /// Root: every interval matches (unconstrained view).
    All,
    /// `/SyncObject/Message`: intervals with any message tag.
    AnyMessage,
    /// A specific message tag.
    Tag(u16),
    Nothing,
}

/// A focus compiled against one application's id tables.
#[derive(Debug, Clone)]
pub struct CompiledFocus {
    code: CodeSel,
    machine: MachineSel,
    process: ProcSel,
    sync: SyncSel,
    /// Processes selected by the machine+process constraints.
    procs: Vec<ProcId>,
}

impl CompiledFocus {
    /// True if interval `iv` (from process `iv.proc` on its node) falls
    /// within this focus.
    pub fn matches(&self, iv: &Interval, binder: &Binder) -> bool {
        self.matches_parts(iv.proc, iv.func, iv.tag, binder)
    }

    /// True if an activity attributed to (`proc`, `func`, `tag`) falls
    /// within this focus. Used both for online intervals and postmortem
    /// totals keys.
    pub fn matches_parts(
        &self,
        proc: histpc_sim::ProcId,
        func: histpc_sim::FuncId,
        tag: Option<TagId>,
        binder: &Binder,
    ) -> bool {
        match self.process {
            ProcSel::All => {}
            ProcSel::Proc(p) => {
                if proc.0 != p {
                    return false;
                }
            }
            ProcSel::Nothing => return false,
        }
        match self.machine {
            MachineSel::All => {}
            MachineSel::Node(n) => {
                if binder.app().node_of(proc) != n as usize {
                    return false;
                }
            }
            MachineSel::Nothing => return false,
        }
        match self.code {
            CodeSel::All => {}
            CodeSel::Module(m) => {
                if binder.module_of(func) != Some(m) {
                    return false;
                }
            }
            CodeSel::Func(f) => {
                if func.0 != f {
                    return false;
                }
            }
            CodeSel::Nothing => return false,
        }
        match self.sync {
            SyncSel::All => true,
            SyncSel::AnyMessage => tag.is_some(),
            SyncSel::Tag(t) => tag == Some(TagId(t)),
            SyncSel::Nothing => false,
        }
    }

    /// Matches an activity that carries no code attribution (postmortem
    /// per-tag message totals): requires the code selection to be the
    /// unconstrained root, then checks process/machine/sync.
    pub fn matches_code_free(
        &self,
        proc: histpc_sim::ProcId,
        tag: Option<TagId>,
        binder: &Binder,
    ) -> bool {
        matches!(self.code, CodeSel::All)
            && self.matches_parts(proc, histpc_sim::FuncId(0), tag, binder)
    }

    /// The processes selected by the machine and process constraints.
    /// Used to normalize time metrics ("fraction of total execution time"
    /// divides by the number of processes under observation).
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// True if any selection in the focus names a resource this
    /// application does not have — a mapping carried across a code
    /// version that renamed or removed it. Such a focus can never match
    /// an interval, so a directive aimed at it is provably stale.
    pub fn names_unknown_resource(&self) -> bool {
        matches!(self.code, CodeSel::Nothing)
            || matches!(self.machine, MachineSel::Nothing)
            || matches!(self.process, ProcSel::Nothing)
            || matches!(self.sync, SyncSel::Nothing)
    }

    /// True if the code selection names a single function (the narrowest
    /// code constraint; used by the cost model).
    pub fn is_single_function(&self) -> bool {
        matches!(self.code, CodeSel::Func(_))
    }

    /// True if the code selection is a module.
    pub fn is_module(&self) -> bool {
        matches!(self.code, CodeSel::Module(_))
    }

    /// True if constrained to message events only.
    pub fn is_message_constrained(&self) -> bool {
        matches!(self.sync, SyncSel::AnyMessage | SyncSel::Tag(_))
    }
}

/// Name tables binding an [`AppSpec`] to resource hierarchies.
#[derive(Debug, Clone)]
pub struct Binder {
    app: AppSpec,
    /// FuncId -> module index.
    module_of_func: Vec<u16>,
}

impl Binder {
    /// Builds the binder for an application.
    pub fn new(app: AppSpec) -> Binder {
        let mut module_of_func = Vec::with_capacity(app.function_count());
        for (mi, m) in app.modules.iter().enumerate() {
            for _ in &m.functions {
                module_of_func.push(mi as u16);
            }
        }
        Binder {
            app,
            module_of_func,
        }
    }

    /// The bound application.
    pub fn app(&self) -> &AppSpec {
        &self.app
    }

    /// The module index a function belongs to.
    pub fn module_of(&self, f: FuncId) -> Option<u16> {
        self.module_of_func.get(f.0 as usize).copied()
    }

    /// Builds the initial resource space: Code, Machine and Process fully
    /// populated from the spec; SyncObject holding only `/SyncObject` and
    /// `/SyncObject/Message` (tags are discovered dynamically at run
    /// time, as in Paradyn).
    pub fn build_space(&self) -> ResourceSpace {
        let mut s = ResourceSpace::new();
        s.add_hierarchy(CODE).expect("fresh space");
        s.add_hierarchy(MACHINE).expect("fresh space");
        s.add_hierarchy(PROCESS).expect("fresh space");
        s.add_hierarchy(SYNC_OBJECT).expect("fresh space");
        for (mi, m) in self.app.modules.iter().enumerate() {
            let _ = mi;
            for f in &m.functions {
                s.add_resource(&self.code_name(&m.name, f))
                    .expect("valid code resource");
            }
        }
        for n in &self.app.nodes {
            s.add_resource(&Self::machine_name(n))
                .expect("valid machine resource");
        }
        for p in &self.app.processes {
            s.add_resource(&Self::process_name(p))
                .expect("valid process resource");
        }
        s.add_resource(&ResourceName::new([SYNC_OBJECT, "Message"]).expect("valid"))
            .expect("valid sync resource");
        s
    }

    fn code_name(&self, module: &str, func: &str) -> ResourceName {
        ResourceName::new([CODE, module, func]).expect("spec names are valid segments")
    }

    /// `/Machine/<node>`.
    pub fn machine_name(node: &str) -> ResourceName {
        ResourceName::new([MACHINE, node]).expect("valid node name")
    }

    /// `/Process/<proc>`.
    pub fn process_name(proc: &str) -> ResourceName {
        ResourceName::new([PROCESS, proc]).expect("valid process name")
    }

    /// `/SyncObject/Message/<tag>` for a tag id.
    pub fn tag_name(&self, tag: TagId) -> ResourceName {
        let label = self.app.tag_label(tag).unwrap_or("unknown");
        ResourceName::new([SYNC_OBJECT, "Message", label]).expect("valid tag label")
    }

    /// Compiles a focus against this application. Selections naming
    /// unknown resources compile to "match nothing" (the pair simply
    /// collects no data), mirroring instrumenting a stale resource.
    pub fn compile(&self, focus: &Focus) -> CompiledFocus {
        let code = match focus.selection(CODE) {
            None => CodeSel::All,
            Some(sel) => match sel.segments() {
                [_] => CodeSel::All,
                [_, module] => match self.app.modules.iter().position(|m| &m.name == module) {
                    Some(mi) => CodeSel::Module(mi as u16),
                    None => CodeSel::Nothing,
                },
                [_, module, func] => match self.app.func_id(module, func) {
                    Some(f) => CodeSel::Func(f.0),
                    None => CodeSel::Nothing,
                },
                _ => CodeSel::Nothing,
            },
        };
        let machine = match focus.selection(MACHINE) {
            None => MachineSel::All,
            Some(sel) => match sel.segments() {
                [_] => MachineSel::All,
                [_, node] => match self.app.nodes.iter().position(|n| n == node) {
                    Some(ni) => MachineSel::Node(ni as u16),
                    None => MachineSel::Nothing,
                },
                _ => MachineSel::Nothing,
            },
        };
        let process = match focus.selection(PROCESS) {
            None => ProcSel::All,
            Some(sel) => match sel.segments() {
                [_] => ProcSel::All,
                [_, proc] => match self.app.processes.iter().position(|p| p == proc) {
                    Some(pi) => ProcSel::Proc(pi as u16),
                    None => ProcSel::Nothing,
                },
                _ => ProcSel::Nothing,
            },
        };
        let sync = match focus.selection(SYNC_OBJECT) {
            None => SyncSel::All,
            Some(sel) => match sel.segments() {
                [_] => SyncSel::All,
                [_, kind] if kind == "Message" => SyncSel::AnyMessage,
                [_, kind, tag] if kind == "Message" => match self.app.tag_id(tag) {
                    Some(t) => SyncSel::Tag(t.0),
                    None => SyncSel::Nothing,
                },
                _ => SyncSel::Nothing,
            },
        };
        let procs = (0..self.app.process_count() as u16)
            .map(ProcId)
            .filter(|p| {
                (match process {
                    ProcSel::All => true,
                    ProcSel::Proc(q) => p.0 == q,
                    ProcSel::Nothing => false,
                }) && (match machine {
                    MachineSel::All => true,
                    MachineSel::Node(n) => self.app.node_of(*p) == n as usize,
                    MachineSel::Nothing => false,
                })
            })
            .collect();
        CompiledFocus {
            code,
            machine,
            process,
            sync,
            procs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, Workload};
    use histpc_sim::{ActivityKind, SimTime};

    fn binder() -> Binder {
        Binder::new(PoissonWorkload::new(PoissonVersion::A).app_spec())
    }

    fn focus(space: &ResourceSpace, sels: &[&str]) -> Focus {
        let mut f = space.whole_program();
        for s in sels {
            f = f.with_selection(ResourceName::parse(s).unwrap());
        }
        f
    }

    fn iv(binder: &Binder, func: &str, module: &str, proc: u16, tag: Option<&str>) -> Interval {
        Interval {
            proc: ProcId(proc),
            func: binder.app().func_id(module, func).unwrap(),
            kind: ActivityKind::SyncWait,
            tag: tag.map(|t| binder.app().tag_id(t).unwrap()),
            start: SimTime(0),
            end: SimTime(100),
            bytes: 8,
        }
    }

    #[test]
    fn space_has_all_hierarchies() {
        let b = binder();
        let s = b.build_space();
        assert!(s.contains(&ResourceName::parse("/Code/exchng1.f/exchng1").unwrap()));
        assert!(s.contains(&ResourceName::parse("/Machine/node01").unwrap()));
        assert!(s.contains(&ResourceName::parse("/Process/poisson:3").unwrap()));
        assert!(s.contains(&ResourceName::parse("/SyncObject/Message").unwrap()));
        // Tags are NOT pre-registered: discovered dynamically.
        assert!(!s.contains(&ResourceName::parse("/SyncObject/Message/3_0").unwrap()));
    }

    #[test]
    fn whole_program_matches_everything() {
        let b = binder();
        let s = b.build_space();
        let c = b.compile(&s.whole_program());
        assert!(c.matches(&iv(&b, "exchng1", "exchng1.f", 2, Some("3_0")), &b));
        assert!(c.matches(&iv(&b, "main", "oned.f", 0, None), &b));
        assert_eq!(c.procs().len(), 4);
    }

    #[test]
    fn code_selection_filters_module_and_function() {
        let b = binder();
        let s = b.build_space();
        let module = b.compile(&focus(&s, &["/Code/exchng1.f"]));
        assert!(module.matches(&iv(&b, "exchng1", "exchng1.f", 0, None), &b));
        assert!(!module.matches(&iv(&b, "main", "oned.f", 0, None), &b));
        let func = b.compile(&focus(&s, &["/Code/oned.f/main"]));
        assert!(func.matches(&iv(&b, "main", "oned.f", 1, None), &b));
        assert!(!func.matches(&iv(&b, "diff", "diff.f", 1, None), &b));
        assert!(func.is_single_function());
        assert!(module.is_module());
    }

    #[test]
    fn process_and_machine_selections_agree() {
        let b = binder();
        let s = b.build_space();
        let p2 = b.compile(&focus(&s, &["/Process/poisson:3"]));
        assert!(p2.matches(&iv(&b, "main", "oned.f", 2, None), &b));
        assert!(!p2.matches(&iv(&b, "main", "oned.f", 1, None), &b));
        assert_eq!(p2.procs(), &[ProcId(2)]);

        let n2 = b.compile(&focus(&s, &["/Machine/node03"]));
        // One process per node in MPI-1: node03 hosts rank 2.
        assert_eq!(n2.procs(), &[ProcId(2)]);

        // Contradictory machine+process selections yield no processes.
        let cross = b.compile(&focus(&s, &["/Machine/node03", "/Process/poisson:1"]));
        assert!(cross.procs().is_empty());
        assert!(!cross.matches(&iv(&b, "main", "oned.f", 2, None), &b));
    }

    #[test]
    fn sync_selection_filters_tags() {
        let b = binder();
        let s = b.build_space();
        let any = b.compile(&focus(&s, &["/SyncObject/Message"]));
        assert!(any.matches(&iv(&b, "exchng1", "exchng1.f", 0, Some("3_0")), &b));
        assert!(!any.matches(&iv(&b, "exchng1", "exchng1.f", 0, None), &b));
        assert!(any.is_message_constrained());

        let t = b.compile(&focus(&s, &["/SyncObject/Message/3_1"]));
        assert!(t.matches(&iv(&b, "exchng1", "exchng1.f", 0, Some("3_1")), &b));
        assert!(!t.matches(&iv(&b, "exchng1", "exchng1.f", 0, Some("3_0")), &b));
    }

    #[test]
    fn unknown_resources_match_nothing() {
        let b = binder();
        let s = b.build_space();
        let c = b.compile(&focus(&s, &["/Code/nbexchng.f"])); // a version-B module
        assert!(!c.matches(&iv(&b, "exchng1", "exchng1.f", 0, None), &b));
    }

    #[test]
    fn tag_name_formats() {
        let b = binder();
        assert_eq!(b.tag_name(TagId(0)).to_string(), "/SyncObject/Message/3_0");
    }
}
