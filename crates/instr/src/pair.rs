//! Metric-focus pairs: the unit of dynamic instrumentation.
//!
//! A pair is requested at some time, becomes active after the insertion
//! delay, observes only what happens while it is active, and can be
//! deleted. Its data lives in a [`TimeHistogram`].

use crate::binder::{Binder, CompiledFocus};
use crate::histogram::TimeHistogram;
use crate::metric::Metric;
use histpc_resources::{Focus, FocusId};
use histpc_sim::{Interval, SimTime};

/// One instrumented (metric, focus) pair.
#[derive(Debug, Clone)]
pub struct Pair {
    /// The measured metric.
    pub metric: Metric,
    /// The focus, in resource-name form.
    pub focus: Focus,
    /// The focus's id in the collector's interner; the key hot paths
    /// route and look up by instead of the name form.
    pub focus_id: FocusId,
    /// The focus compiled against the application.
    pub compiled: CompiledFocus,
    /// When instrumentation was requested.
    pub requested_at: SimTime,
    /// When instrumentation became active (request + insertion delay).
    pub active_from: SimTime,
    /// When instrumentation was deleted, if it has been.
    pub disabled_at: Option<SimTime>,
    /// Number of matching samples folded into the histogram. Degraded
    /// runs use this to tell "measured zero" from "never measured".
    pub observations: u64,
    hist: TimeHistogram,
}

impl Pair {
    /// Creates a pair whose instrumentation activates at `active_from`.
    pub fn new(
        metric: Metric,
        focus: Focus,
        focus_id: FocusId,
        compiled: CompiledFocus,
        requested_at: SimTime,
        active_from: SimTime,
        hist: TimeHistogram,
    ) -> Pair {
        Pair {
            metric,
            focus,
            focus_id,
            compiled,
            requested_at,
            active_from,
            disabled_at: None,
            observations: 0,
            hist,
        }
    }

    /// True while the pair's instrumentation is in place at time `t`.
    pub fn is_active_at(&self, t: SimTime) -> bool {
        t >= self.active_from && self.disabled_at.is_none_or(|d| t < d)
    }

    /// True if the pair has not been deleted.
    pub fn is_live(&self) -> bool {
        self.disabled_at.is_none()
    }

    /// Folds one interval into the pair's data if it matches the focus,
    /// clipped to the pair's enablement window — dynamic instrumentation
    /// cannot see the past, nor anything after its deletion.
    pub fn observe(&mut self, iv: &Interval, binder: &Binder) {
        if !self.compiled.matches(iv, binder) {
            return;
        }
        let from = iv.start.max(self.active_from);
        let to = match self.disabled_at {
            Some(d) => iv.end.min(d),
            None => iv.end,
        };
        if to <= from {
            return;
        }
        let full = self.metric.extract(iv);
        if full == 0.0 {
            return;
        }
        // Clip proportionally: a half-covered interval contributes half
        // its value (time metrics exactly; event metrics approximately).
        let frac = (to - from).as_secs_f64() / iv.duration().as_secs_f64().max(1e-12);
        self.observations += 1;
        self.hist.add(from, to, full * frac.min(1.0));
    }

    /// Folds an aggregated delta into the pair's data, clipped to the
    /// enablement window (value scaled by the covered fraction of the
    /// delta's span).
    pub fn observe_delta(&mut self, d: &crate::delta::Delta, binder: &Binder) {
        if !self.compiled.matches_parts(d.proc, d.func, d.tag, binder) {
            return;
        }
        let from = d.start.max(self.active_from);
        let to = match self.disabled_at {
            Some(dis) => d.end.min(dis),
            None => d.end,
        };
        if to <= from {
            return;
        }
        let full = match self.metric {
            Metric::CpuTime => {
                if d.kind == histpc_sim::ActivityKind::Cpu {
                    d.seconds
                } else {
                    0.0
                }
            }
            Metric::SyncWaitTime => {
                if d.kind == histpc_sim::ActivityKind::SyncWait {
                    d.seconds
                } else {
                    0.0
                }
            }
            Metric::MsgWaitTime => {
                if d.kind == histpc_sim::ActivityKind::SyncWait && d.tag.is_some() {
                    d.seconds
                } else {
                    0.0
                }
            }
            Metric::BarrierWaitTime => {
                if d.kind == histpc_sim::ActivityKind::SyncWait && d.tag.is_none() {
                    d.seconds
                } else {
                    0.0
                }
            }
            Metric::IoWaitTime => {
                if d.kind == histpc_sim::ActivityKind::IoWait {
                    d.seconds
                } else {
                    0.0
                }
            }
            Metric::MsgCount => d.msgs as f64,
            Metric::MsgBytes => d.bytes as f64,
        };
        if full == 0.0 {
            return;
        }
        let span = (d.end - d.start).as_secs_f64().max(1e-12);
        let frac = ((to - from).as_secs_f64() / span).min(1.0);
        self.observations += 1;
        self.hist.add(from, to, full * frac);
    }

    /// The metric value accumulated in `[from, to)` (clipped to the
    /// enablement window implicitly, since no data exists outside it).
    pub fn value(&self, from: SimTime, to: SimTime) -> f64 {
        self.hist.sum(from, to)
    }

    /// Total value accumulated over the pair's lifetime.
    pub fn total(&self) -> f64 {
        self.hist.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use histpc_sim::workloads::{PoissonVersion, PoissonWorkload, Workload};
    use histpc_sim::{ActivityKind, FuncId, ProcId, SimDuration};

    fn setup() -> (Binder, Pair) {
        let b = Binder::new(PoissonWorkload::new(PoissonVersion::A).app_spec());
        let space = b.build_space();
        let focus = space.whole_program();
        let compiled = b.compile(&focus);
        let pair = Pair::new(
            Metric::CpuTime,
            focus,
            FocusId(0),
            compiled,
            SimTime::ZERO,
            SimTime::from_millis(100),
            TimeHistogram::new(64, SimDuration::from_millis(100)),
        );
        (b, pair)
    }

    fn cpu_iv(start_ms: u64, end_ms: u64) -> Interval {
        Interval {
            proc: ProcId(0),
            func: FuncId(0),
            kind: ActivityKind::Cpu,
            tag: None,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            bytes: 0,
        }
    }

    #[test]
    fn activation_window() {
        let (_, mut p) = setup();
        assert!(!p.is_active_at(SimTime::from_millis(50)));
        assert!(p.is_active_at(SimTime::from_millis(100)));
        p.disabled_at = Some(SimTime::from_millis(500));
        assert!(p.is_active_at(SimTime::from_millis(499)));
        assert!(!p.is_active_at(SimTime::from_millis(500)));
        assert!(!p.is_live());
    }

    #[test]
    fn observes_nothing_before_activation() {
        let (b, mut p) = setup();
        p.observe(&cpu_iv(0, 100), &b);
        assert_eq!(p.total(), 0.0);
    }

    #[test]
    fn clips_partially_covered_intervals() {
        let (b, mut p) = setup();
        // Active from 100ms; interval covers 50..150ms -> half observed.
        p.observe(&cpu_iv(50, 150), &b);
        assert!((p.total() - 0.05).abs() < 1e-9, "got {}", p.total());
    }

    #[test]
    fn clips_after_deletion() {
        let (b, mut p) = setup();
        p.disabled_at = Some(SimTime::from_millis(200));
        p.observe(&cpu_iv(150, 250), &b);
        assert!((p.total() - 0.05).abs() < 1e-9);
        // Entirely after deletion: nothing.
        p.observe(&cpu_iv(300, 400), &b);
        assert!((p.total() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn value_windows_query_the_histogram() {
        let (b, mut p) = setup();
        p.observe(&cpu_iv(100, 300), &b);
        let v = p.value(SimTime::from_millis(100), SimTime::from_millis(200));
        assert!((v - 0.1).abs() < 1e-9, "got {v}");
        let all = p.value(SimTime::ZERO, SimTime::from_secs(10));
        assert!((all - 0.2).abs() < 1e-9);
    }

    #[test]
    fn non_matching_intervals_ignored() {
        let (b, mut p) = setup();
        // SyncWait does not feed CpuTime.
        let mut iv = cpu_iv(100, 200);
        iv.kind = ActivityKind::SyncWait;
        p.observe(&iv, &b);
        assert_eq!(p.total(), 0.0);
    }
}
