//! Property-based tests for histograms, deltas, and pair clipping.

use histpc_instr::delta::aggregate;
use histpc_instr::TimeHistogram;
use histpc_sim::{ActivityKind, FuncId, Interval, ProcId, SimDuration, SimTime, TagId};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (
        0u16..4,
        0u16..6,
        0u8..3,
        prop::option::of(0u16..3),
        0u64..10_000_000,
        1u64..500_000,
        0u64..4096,
    )
        .prop_map(|(proc, func, kind, tag, start, len, bytes)| Interval {
            proc: ProcId(proc),
            func: FuncId(func),
            kind: match kind {
                0 => ActivityKind::Cpu,
                1 => ActivityKind::SyncWait,
                _ => ActivityKind::IoWait,
            },
            tag: tag.map(TagId),
            start: SimTime(start),
            end: SimTime(start + len),
            bytes,
        })
}

proptest! {
    /// Histogram totals are conserved regardless of how many folds the
    /// data forces.
    #[test]
    fn histogram_folding_conserves_total(
        adds in prop::collection::vec((0u64..100_000_000, 1u64..1_000_000, 0.01f64..10.0), 1..50)
    ) {
        let mut h = TimeHistogram::new(32, SimDuration::from_millis(10));
        let mut expect = 0.0;
        for (start, len, amount) in adds {
            h.add(SimTime(start), SimTime(start + len), amount);
            expect += amount;
        }
        prop_assert!((h.total() - expect).abs() < 1e-6 * expect.max(1.0),
            "total {} vs expected {expect}", h.total());
    }

    /// A histogram's windowed sums never exceed its total and the full
    /// window recovers the total.
    #[test]
    fn histogram_window_sums_bounded(
        adds in prop::collection::vec((0u64..1_000_000, 1u64..100_000, 0.01f64..5.0), 1..20),
        from in 0u64..1_000_000,
        len in 1u64..1_000_000,
    ) {
        let mut h = TimeHistogram::new(64, SimDuration::from_millis(1));
        for (start, l, amount) in adds {
            h.add(SimTime(start), SimTime(start + l), amount);
        }
        let windowed = h.sum(SimTime(from), SimTime(from + len));
        prop_assert!(windowed <= h.total() + 1e-9);
        let everything = h.sum(SimTime::ZERO, h.span_end());
        prop_assert!((everything - h.total()).abs() < 1e-6 * h.total().max(1.0));
    }

    /// Delta aggregation conserves seconds, bytes and message counts per
    /// attribution key, and overall.
    #[test]
    fn delta_aggregation_conserves(ivs in prop::collection::vec(interval_strategy(), 0..60)) {
        let deltas = aggregate(&ivs);
        let total_secs: f64 = ivs.iter().map(|iv| iv.duration().as_secs_f64()).sum();
        let agg_secs: f64 = deltas.iter().map(|d| d.seconds).sum();
        prop_assert!((total_secs - agg_secs).abs() < 1e-9,
            "seconds {total_secs} vs {agg_secs}");

        let total_msgs: u64 = ivs
            .iter()
            .filter(|iv| iv.tag.is_some() && iv.bytes > 0)
            .count() as u64;
        let agg_msgs: u64 = deltas.iter().map(|d| d.msgs).sum();
        prop_assert_eq!(total_msgs, agg_msgs);

        // Each delta's span covers all its source intervals.
        for d in &deltas {
            for iv in ivs.iter().filter(|iv| {
                iv.proc == d.proc && iv.func == d.func && iv.kind == d.kind && iv.tag == d.tag
            }) {
                prop_assert!(d.start <= iv.start && d.end >= iv.end);
            }
        }
    }

    /// Aggregation is deterministic: same input, same output order.
    #[test]
    fn delta_aggregation_deterministic(ivs in prop::collection::vec(interval_strategy(), 0..40)) {
        prop_assert_eq!(aggregate(&ivs), aggregate(&ivs));
    }
}
