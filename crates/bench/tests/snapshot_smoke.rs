//! Smoke test for the committed per-PR bench snapshot.
//!
//! The repo carries a `BENCH_<pr>.json` at its root recording the perf
//! trajectory of each PR. This test asserts the newest committed
//! snapshot parses under the stable schema and actually covers every
//! scenario the harness is supposed to measure — so a snapshot that was
//! hand-edited, truncated, or produced by a stale binary fails the
//! suite instead of silently gating CI on nothing.

use std::path::PathBuf;

use histpc_bench::snapshot::{Snapshot, SCHEMA};

/// Newest committed `BENCH_<n>.json` at the repository root.
fn newest_snapshot_path() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves");
    let mut found: Vec<(u32, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(&root).expect("repo root readable") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
        {
            if let Ok(pr) = num.parse::<u32>() {
                found.push((pr, path));
            }
        }
    }
    found.sort();
    found
        .pop()
        .map(|(_, path)| path)
        .expect("a BENCH_<pr>.json snapshot is committed at the repo root")
}

#[test]
fn committed_snapshot_parses_and_covers_every_scenario() {
    let path = newest_snapshot_path();
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let snap = Snapshot::parse(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));

    assert_eq!(snap.schema, SCHEMA, "snapshot schema drifted");
    assert!(snap.pr >= 6, "snapshot pr number went backwards");

    // Every diagnosis scenario must be present in the "after" phase,
    // converged, and non-trivial.
    for version in ["A", "B", "C", "D"] {
        let m = snap
            .after
            .diagnosis
            .iter()
            .find(|m| m.version == version)
            .unwrap_or_else(|| panic!("version {version} missing from after phase"));
        assert!(m.quiescent, "version {version} did not converge");
        assert!(m.pairs_tested > 0, "version {version} tested no pairs");
        assert!(m.bottlenecks > 0, "version {version} found no bottlenecks");
        assert!(m.end_time_us > 0);
    }

    // The resilience scenarios ride along in the full profile.
    let overload = snap
        .after
        .overload
        .as_ref()
        .expect("overload soak missing from snapshot");
    assert!(overload.converged, "overload soak did not converge");
    assert!(
        overload.degraded_gracefully,
        "overload soak was not graceful"
    );
    let degraded = snap
        .after
        .degraded
        .as_ref()
        .expect("degraded-run scenario missing from snapshot");
    assert!(degraded.directives > 0);

    // Raw engine throughput was measured.
    assert!(snap.after.sim.events > 0);
    assert!(snap.after.sim.sim_us > 0);

    // Scenarios introduced after the schema froze must be present in
    // every snapshot from their introducing PR onward.
    if snap.pr >= 7 {
        assert!(
            snap.after.corpus.is_some(),
            "corpus scenario missing from a PR>=7 snapshot"
        );
    }
    if snap.pr >= 8 {
        let s = snap
            .after
            .supervised
            .as_ref()
            .expect("supervised scenario missing from a PR>=8 snapshot");
        assert_eq!(
            s.completed, s.sessions,
            "supervised snapshot session did not complete"
        );
        assert!(
            s.identical,
            "supervised record diverged from the bare diagnosis"
        );
    }

    // A before phase exists so the snapshot records its own trajectory.
    assert!(
        snap.before.is_some(),
        "snapshot carries no before phase to compare against"
    );
    let speedup = snap
        .speedup("D")
        .expect("before/after both measure version D");
    // The 1.5x version-D speedup was the headline claim of the PR-6
    // perf work; later snapshots record timings for trend-tracking but
    // make no speedup claim (their before phase is the prior PR's
    // "after", measured on whatever host generated it).
    if snap.pr == 6 {
        assert!(
            speedup >= 1.5,
            "version D speedup {speedup:.2}x is below the 1.5x target"
        );
    }
}
