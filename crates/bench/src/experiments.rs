//! Shared experiment machinery for the paper's evaluation section.

use histpc::history;
use histpc::prelude::*;

/// The canonical experiment configuration: 2 s conclusion windows,
/// 250 ms sampling, generous time limit.
pub fn exp_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        max_time: SimDuration::from_secs(900),
        ..SearchConfig::default()
    }
}

/// Runs the unmodified Performance Consultant on a Poisson version.
pub fn base_diagnosis(version: PoissonVersion) -> Diagnosis {
    let wl = PoissonWorkload::new(version);
    Session::new()
        .diagnose(&wl, &exp_config(), &format!("base-{}", version.label()))
        .expect("default config lints clean")
}

/// Runs a directed diagnosis of a Poisson version.
pub fn directed_diagnosis(version: PoissonVersion, directives: SearchDirectives) -> Diagnosis {
    let wl = PoissonWorkload::new(version);
    Session::new()
        .diagnose(
            &wl,
            &exp_config().with_directives(directives),
            &format!("directed-{}", version.label()),
        )
        .expect("harvested directives lint clean")
}

/// The evaluation's reference bottleneck set for a base run: every true
/// (hypothesis, focus) whose Machine selection is the hierarchy root.
///
/// Machine-constrained foci duplicate Process-constrained ones under
/// MPI-1's one-process-per-node model (the basis of the paper's
/// redundant-hierarchy prune), so the reference set is de-duplicated to
/// process form — otherwise pruned runs could never reach "100%".
pub fn truth_of(d: &Diagnosis) -> Vec<(String, Focus)> {
    d.report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect()
}

/// Formats an optional time as seconds.
pub fn fmt_time(t: Option<SimTime>) -> String {
    match t {
        Some(t) => format!("{:.1}", t.as_secs_f64()),
        None => "-".to_string(),
    }
}

/// Formats a reduction percentage against a base value.
pub fn fmt_reduction(t: Option<SimTime>, base: Option<SimTime>) -> String {
    match (t, base) {
        (Some(t), Some(b)) if b.as_micros() > 0 => {
            let red = 100.0 * (1.0 - t.as_secs_f64() / b.as_secs_f64());
            format!("({red:+.1}%)", red = -red)
        }
        _ => String::new(),
    }
}

// ---------------------------------------------------------------------
// Table 1: time to find all true bottlenecks with search directives
// ---------------------------------------------------------------------

/// One directive configuration of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Config {
    /// The unmodified Performance Consultant.
    NoDirectives,
    /// All prunes (general + historic, including previously-false pairs).
    PrunesOnly,
    /// General prunes only (not application-specific).
    GeneralPrunesOnly,
    /// Historic prunes only (false pairs, trivial functions, redundant
    /// hierarchies).
    HistoricPrunesOnly,
    /// Priorities only.
    PrioritiesOnly,
    /// Priorities plus the safe prunes.
    PrioritiesAndPrunes,
}

impl Table1Config {
    /// All configurations, in the paper's column order.
    pub const ALL: [Table1Config; 6] = [
        Table1Config::NoDirectives,
        Table1Config::PrunesOnly,
        Table1Config::GeneralPrunesOnly,
        Table1Config::HistoricPrunesOnly,
        Table1Config::PrioritiesOnly,
        Table1Config::PrioritiesAndPrunes,
    ];

    /// The column heading.
    pub fn label(self) -> &'static str {
        match self {
            Table1Config::NoDirectives => "No Directives",
            Table1Config::PrunesOnly => "All Prunes",
            Table1Config::GeneralPrunesOnly => "General Prunes",
            Table1Config::HistoricPrunesOnly => "Historic Prunes",
            Table1Config::PrioritiesOnly => "Priorities Only",
            Table1Config::PrioritiesAndPrunes => "Prior. & Prunes",
        }
    }

    /// The extraction options for this configuration (None = no
    /// directives at all).
    pub fn extraction(self) -> Option<ExtractionOptions> {
        match self {
            Table1Config::NoDirectives => None,
            Table1Config::PrunesOnly => Some(ExtractionOptions::all_prunes()),
            Table1Config::GeneralPrunesOnly => Some(ExtractionOptions::general_prunes_only()),
            Table1Config::HistoricPrunesOnly => Some(ExtractionOptions::historic_prunes_only()),
            Table1Config::PrioritiesOnly => Some(ExtractionOptions::priorities_only()),
            Table1Config::PrioritiesAndPrunes => {
                Some(ExtractionOptions::priorities_and_safe_prunes())
            }
        }
    }
}

/// The result of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The percentile fractions measured (0.25, 0.50, 0.75, 1.0).
    pub fractions: [f64; 4],
    /// Per configuration: the time to find each fraction of the
    /// reference bottleneck set.
    pub times: Vec<(Table1Config, [Option<SimTime>; 4])>,
    /// Size of the reference bottleneck set.
    pub truth_size: usize,
}

/// Runs the Table 1 experiment on Poisson 2-D (version C).
pub fn run_table1() -> Table1 {
    let base = base_diagnosis(PoissonVersion::C);
    let truth = truth_of(&base);
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let mut times = Vec::new();
    for config in Table1Config::ALL {
        let report = match config.extraction() {
            None => base.report.clone(),
            Some(opts) => {
                let directives = history::extract(&base.record, &opts);
                directed_diagnosis(PoissonVersion::C, directives).report
            }
        };
        let row = [
            report.time_to_find(&truth, fractions[0]),
            report.time_to_find(&truth, fractions[1]),
            report.time_to_find(&truth, fractions[2]),
            report.time_to_find(&truth, fractions[3]),
        ];
        times.push((config, row));
    }
    Table1 {
        fractions,
        times,
        truth_size: truth.len(),
    }
}

impl Table1 {
    /// Renders the table in the paper's layout (times in seconds, with
    /// reductions against the no-directive column).
    pub fn render(&self) -> String {
        let base = self.times[0].1;
        let mut out = String::new();
        out.push_str(&format!(
            "Table 1: Time (s) to Find True Bottlenecks with Search Directives\n\
             (reference set: {} bottlenecks)\n\n",
            self.truth_size
        ));
        out.push_str(&format!("{:<12}", "% Found"));
        for (config, _) in &self.times {
            out.push_str(&format!("{:>24}", config.label()));
        }
        out.push('\n');
        for (i, frac) in self.fractions.iter().enumerate() {
            out.push_str(&format!("{:<12}", format!("{:.0}%", frac * 100.0)));
            for (_, row) in &self.times {
                let cell = format!("{} {}", fmt_time(row[i]), fmt_reduction(row[i], base[i]));
                out.push_str(&format!("{cell:>24}"));
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Table 2: bottlenecks found with varying threshold values
// ---------------------------------------------------------------------

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Synchronization threshold setting (fraction of execution time).
    pub threshold: f64,
    /// Significant bottlenecks reported by the Performance Consultant
    /// (out of the pre-identified significant set, as in the paper's
    /// §4.2 where the quality of a diagnosis is "the number of these
    /// areas reported as bottlenecks").
    pub bottlenecks: usize,
    /// Total hypothesis/focus pairs tested.
    pub pairs_tested: usize,
    /// Bottlenecks per pair tested.
    pub efficiency: f64,
}

/// The result of a threshold sweep.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Application label ("poisson 2-D" or "ocean/PVM").
    pub app: String,
    /// Size of the pre-identified significant bottleneck set.
    pub significant: usize,
    /// Sweep rows, in descending threshold order.
    pub rows: Vec<Table2Row>,
}

/// The pre-identified significant problem areas of an application: the
/// postmortem bottleneck set at the reference synchronization threshold,
/// de-duplicated across the redundant Machine hierarchy. This plays the
/// role of the paper's profile analysis ("45% ... in exchng2, 20% in
/// main", per-tag and per-process breakdowns) that fixed the 26
/// significant areas before the sweep.
pub fn significant_set(workload: &dyn Workload, sync_threshold: f64) -> Vec<(String, Focus)> {
    use histpc::consultant::HypothesisTree;
    let mut engine = workload.build_engine();
    engine.run_until(SimTime::from_secs(60));
    let pm = PostmortemData::from_totals(engine.app().clone(), engine.totals());
    let mut directives = SearchDirectives::none();
    directives.add_threshold(ThresholdDirective {
        hypothesis: "ExcessiveSyncWaitingTime".into(),
        value: sync_threshold,
    });
    history::ground_truth(&pm, &HypothesisTree::standard(), &directives)
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect()
}

fn sweep_row(
    workload: &dyn Workload,
    threshold: f64,
    significant: &[(String, Focus)],
) -> Table2Row {
    let mut directives = SearchDirectives::none();
    directives.add_threshold(ThresholdDirective {
        hypothesis: "ExcessiveSyncWaitingTime".into(),
        value: threshold,
    });
    let d = Session::new()
        .diagnose(workload, &exp_config().with_directives(directives), "sweep")
        .expect("sweep thresholds lint clean");
    let found = d.report.bottleneck_set();
    let hits = significant.iter().filter(|p| found.contains(p)).count();
    Table2Row {
        threshold,
        bottlenecks: hits,
        pairs_tested: d.report.pairs_tested,
        efficiency: if d.report.pairs_tested == 0 {
            0.0
        } else {
            hits as f64 / d.report.pairs_tested as f64
        },
    }
}

/// Runs the Table 2 sweep on the Poisson 2-D application. The reference
/// threshold defining the significant set is 12% (the paper's optimum
/// for this application).
pub fn run_table2() -> Table2 {
    let wl = PoissonWorkload::new(PoissonVersion::C);
    let significant = significant_set(&wl, 0.12);
    let rows = [0.30, 0.20, 0.15, 0.12, 0.10, 0.05]
        .into_iter()
        .map(|t| sweep_row(&wl, t, &significant))
        .collect();
    Table2 {
        app: "Poisson 2-D decomposition (MPI, 4 nodes)".into(),
        significant: significant.len(),
        rows,
    }
}

/// Runs the §4.2 secondary study: the PVM-era ocean-circulation code,
/// whose optimal threshold (20% in the paper) differs from the MPI
/// application's — the argument for application-specific thresholds.
pub fn run_table2_ocean() -> Table2 {
    let wl = OceanWorkload::new();
    let significant = significant_set(&wl, 0.20);
    let rows = [0.30, 0.20, 0.10]
        .into_iter()
        .map(|t| sweep_row(&wl, t, &significant))
        .collect();
    Table2 {
        app: "Ocean circulation model (PVM, SPARCstations)".into(),
        significant: significant.len(),
        rows,
    }
}

impl Table2 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Table 2: Bottlenecks Found with Varying Threshold Values\n({}; {} significant areas)\n\n",
            self.app, self.significant
        );
        out.push_str(&format!(
            "{:>10} {:>14} {:>14} {:>12}\n",
            "Threshold", "Bottlenecks", "Pairs Tested", "Efficiency"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>9.0}% {:>14} {:>14} {:>12.3}\n",
                r.threshold * 100.0,
                r.bottlenecks,
                r.pairs_tested,
                r.efficiency
            ));
        }
        out
    }

    /// The useful threshold: as in the paper, a setting first has to
    /// yield a (near-)complete diagnosis — "a starting point of 30%
    /// yielded an incomplete diagnosis" disqualifies it outright — and
    /// among complete settings the most efficient one wins.
    pub fn best_threshold(&self) -> f64 {
        let max_found = self.rows.iter().map(|r| r.bottlenecks).max().unwrap_or(0);
        self.rows
            .iter()
            .filter(|r| (r.bottlenecks as f64) >= 0.95 * max_found as f64)
            .max_by(|a, b| a.efficiency.total_cmp(&b.efficiency))
            .map(|r| r.threshold)
            .unwrap_or(0.2)
    }
}

// ---------------------------------------------------------------------
// Table 3: directives across application versions
// ---------------------------------------------------------------------

/// The cross-version experiment result.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// The versions, row/column order A, B, C, D.
    pub versions: [PoissonVersion; 4],
    /// `times[row][0]` is the base (no directives) time for the row's
    /// version; `times[row][1 + col]` is the time when directed by
    /// directives extracted from `versions[col]`'s base run.
    pub times: Vec<Vec<Option<SimTime>>>,
}

/// Runs the Table 3 experiment: every version diagnosed with directives
/// from every version's base run (including its own), resource-mapped
/// across versions.
pub fn run_table3() -> Table3 {
    let versions = [
        PoissonVersion::A,
        PoissonVersion::B,
        PoissonVersion::C,
        PoissonVersion::D,
    ];
    // Base runs (column "None" and directive sources), in parallel.
    let mut bases: Vec<Option<Diagnosis>> = versions.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        for (slot, &v) in bases.iter_mut().zip(&versions) {
            s.spawn(move || {
                *slot = Some(base_diagnosis(v));
            });
        }
    });
    let bases: Vec<Diagnosis> = bases.into_iter().map(|b| b.expect("spawned")).collect();

    let session = Session::new();
    let mut times = Vec::new();
    for (ri, &row_version) in versions.iter().enumerate() {
        let truth = truth_of(&bases[ri]);
        let base_time = bases[ri].report.time_to_find(&truth, 1.0);
        let mut row = vec![base_time];
        for (ci, _col_version) in versions.iter().enumerate() {
            let directives = session
                .harvest_mapped(
                    &bases[ci].record,
                    &bases[ri].record.resources,
                    &ExtractionOptions::priorities_and_safe_prunes(),
                    &MappingSet::new(),
                )
                .expect("suggested mappings lint clean");
            let d = directed_diagnosis(row_version, directives);
            row.push(d.report.time_to_find(&truth, 1.0));
        }
        times.push(row);
    }
    Table3 { versions, times }
}

impl Table3 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Table 3: Time (s) to find all bottlenecks with search directives\n\
             from different application versions\n\n",
        );
        out.push_str(&format!("{:<10}", "Version"));
        out.push_str(&format!("{:>18}", "None"));
        for v in &self.versions {
            out.push_str(&format!("{:>18}", v.label()));
        }
        out.push('\n');
        for (ri, row) in self.times.iter().enumerate() {
            out.push_str(&format!("{:<10}", self.versions[ri].label()));
            let base = row[0];
            out.push_str(&format!("{:>18}", fmt_time(base)));
            for cell in &row[1..] {
                out.push_str(&format!(
                    "{:>18}",
                    format!("{} {}", fmt_time(*cell), fmt_reduction(*cell, base))
                ));
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Table 4: similarity of extracted priorities across code versions
// ---------------------------------------------------------------------

/// Membership classes of Table 4's columns.
#[derive(Debug, Clone, Default)]
pub struct Table4 {
    /// Counts for high-priority directives:
    /// [A only, B only, C only, A+B, A+C, B+C, A+B+C].
    pub high: [usize; 7],
    /// Counts for low-priority directives, same classes.
    pub low: [usize; 7],
}

/// Runs the Table 4 experiment: compare the priority-directive sets
/// extracted from base runs of versions A, B and C, after mapping each
/// into version C's resource names.
pub fn run_table4() -> Table4 {
    let session = Session::new();
    let a = base_diagnosis(PoissonVersion::A);
    let b = base_diagnosis(PoissonVersion::B);
    let c = base_diagnosis(PoissonVersion::C);
    let opts = ExtractionOptions::priorities_only();
    let in_c = |src: &Diagnosis| {
        session
            .harvest_mapped(&src.record, &c.record.resources, &opts, &MappingSet::new())
            .expect("suggested mappings lint clean")
    };
    let da = in_c(&a);
    let db = in_c(&b);
    let dc = history::extract(&c.record, &opts);

    let mut out = Table4::default();
    let sets = [&da, &db, &dc];
    let mut keys: Vec<(String, String, PriorityLevel)> = Vec::new();
    for d in sets {
        for p in &d.priorities {
            let k = (p.hypothesis.clone(), p.focus.to_string(), p.level);
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    for (hyp, focus_text, level) in keys {
        if level == PriorityLevel::Medium {
            continue;
        }
        let member: Vec<bool> = sets
            .iter()
            .map(|d| {
                d.priorities.iter().any(|p| {
                    p.hypothesis == hyp && p.focus.to_string() == focus_text && p.level == level
                })
            })
            .collect();
        let class = match (member[0], member[1], member[2]) {
            (true, false, false) => 0,
            (false, true, false) => 1,
            (false, false, true) => 2,
            (true, true, false) => 3,
            (true, false, true) => 4,
            (false, true, true) => 5,
            (true, true, true) => 6,
            (false, false, false) => continue,
        };
        match level {
            PriorityLevel::High => out.high[class] += 1,
            PriorityLevel::Low => out.low[class] += 1,
            PriorityLevel::Medium => {}
        }
    }
    out
}

impl Table4 {
    /// Total high-priority directives.
    pub fn high_total(&self) -> usize {
        self.high.iter().sum()
    }

    /// Total low-priority directives.
    pub fn low_total(&self) -> usize {
        self.low.iter().sum()
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let headers = [
            "A only", "B only", "C only", "A,B", "A,C", "B,C", "A,B,C", "TOTAL",
        ];
        let mut out =
            String::from("Table 4: Similarity of Extracted Priorities Across Code Versions\n\n");
        out.push_str(&format!("{:<10}", "Priority"));
        for h in headers {
            out.push_str(&format!("{h:>9}"));
        }
        out.push('\n');
        let both: Vec<usize> = self
            .high
            .iter()
            .zip(&self.low)
            .map(|(h, l)| h + l)
            .collect();
        for (label, row, total) in [
            ("High", &self.high[..], self.high_total()),
            ("Low", &self.low[..], self.low_total()),
            ("Both", &both[..], self.high_total() + self.low_total()),
        ] {
            out.push_str(&format!("{label:<10}"));
            for v in row {
                out.push_str(&format!("{v:>9}"));
            }
            out.push_str(&format!("{total:>9}\n"));
        }
        out
    }
}

// ---------------------------------------------------------------------
// §4.3 text experiments: repeated runs and directive combination
// ---------------------------------------------------------------------

/// Results of the §4.3 repeated-run and combination analyses.
#[derive(Debug, Clone)]
pub struct CombinationExperiment {
    /// True pairs in the base run of A (a1).
    pub a1_true: usize,
    /// True pairs in the directed second run (a2).
    pub a2_true: usize,
    /// True pairs common to both runs.
    pub common_true: usize,
    /// Priority directives common to A∩B and A∪B.
    pub common_directives: usize,
    /// Priority directives unique to A∪B.
    pub union_extra: usize,
    /// Time to find all of C's bottlenecks using A∩B directives.
    pub time_intersect: Option<SimTime>,
    /// Time to find all of C's bottlenecks using A∪B directives.
    pub time_union: Option<SimTime>,
}

/// Runs the §4.3 experiments: (1) directives from a base run of A guiding
/// a second run of A; (2) the A∩B and A∪B combinations guiding C.
pub fn run_combination() -> CombinationExperiment {
    let session = Session::new();
    // Part 1: a1 -> a2. Both runs get the same bounded session length,
    // shorter than the base search needs to complete — the situation the
    // paper describes where the PC "would miss data for interesting
    // events and possibly stop before completion due to inherent
    // instrumentation cost limits". The second run also differs in
    // jitter seed, modelling repeated executions on dedicated time.
    let bounded = SearchConfig {
        max_time: SimDuration::from_secs(45),
        ..exp_config()
    };
    let a1 = Session::new()
        .diagnose(&PoissonWorkload::new(PoissonVersion::A), &bounded, "a1")
        .expect("default config lints clean");
    let directives = history::extract(&a1.record, &ExtractionOptions::priorities_only());
    let wl_a2 = PoissonWorkload::new(PoissonVersion::A).with_seed(0xA2);
    let a2 = session
        .diagnose(&wl_a2, &bounded.clone().with_directives(directives), "a2")
        .expect("harvested directives lint clean");
    let a1_set: Vec<(String, Focus)> = a1.report.bottleneck_set();
    let a2_set: Vec<(String, Focus)> = a2.report.bottleneck_set();
    let common_true = a1_set.iter().filter(|p| a2_set.contains(p)).count();

    // Part 2: combine A and B directives, diagnose C with each. Uses
    // complete base runs of A and B (the combination study is about
    // multi-run knowledge, not truncation).
    let a_full = base_diagnosis(PoissonVersion::A);
    let b = base_diagnosis(PoissonVersion::B);
    let c = base_diagnosis(PoissonVersion::C);
    let opts = ExtractionOptions::priorities_only();
    let da = session
        .harvest_mapped(
            &a_full.record,
            &c.record.resources,
            &opts,
            &MappingSet::new(),
        )
        .expect("suggested mappings lint clean");
    let db = session
        .harvest_mapped(&b.record, &c.record.resources, &opts, &MappingSet::new())
        .expect("suggested mappings lint clean");
    let inter = intersect(&da, &db);
    let uni = union(&da, &db);
    let common_directives = inter.priorities.len();
    let union_extra = uni.priorities.len() - common_directives;
    let truth = truth_of(&c);
    let d_inter = directed_diagnosis(PoissonVersion::C, inter);
    let d_union = directed_diagnosis(PoissonVersion::C, uni);
    CombinationExperiment {
        a1_true: a1_set.len(),
        a2_true: a2_set.len(),
        common_true,
        common_directives,
        union_extra,
        time_intersect: d_inter.report.time_to_find(&truth, 1.0),
        time_union: d_union.report.time_to_find(&truth, 1.0),
    }
}

impl CombinationExperiment {
    /// Renders the experiment summary.
    pub fn render(&self) -> String {
        format!(
            "Experiment (§4.3): repeated runs and directive combination\n\n\
             Base run a1 of version A: {} pairs tested true\n\
             Directed run a2 (directives from a1): {} pairs tested true\n\
             True in both runs: {}\n\n\
             A∩B vs A∪B priorities (mapped into version C's names):\n\
             common directives: {}\n\
             additional directives unique to A∪B: {}\n\
             time to diagnose C with A∩B: {}\n\
             time to diagnose C with A∪B: {}\n",
            self.a1_true,
            self.a2_true,
            self.common_true,
            self.common_directives,
            self.union_extra,
            fmt_time(self.time_intersect),
            fmt_time(self.time_union),
        )
    }
}

// ---------------------------------------------------------------------
// Degraded-run experiment: the headline effect under injected faults
// ---------------------------------------------------------------------

/// Result of the degraded-run experiment: the paper's headline
/// diagnosis-time reduction, re-measured with a lossy, partially-dead
/// daemon layer underneath both runs.
#[derive(Debug, Clone)]
pub struct DegradedExperiment {
    /// The injected sample-drop rate (0.0–1.0).
    pub loss: f64,
    /// When (if at all) a node was killed mid-search.
    pub kill_at: Option<SimTime>,
    /// Time of the last bottleneck in the faulted base run.
    pub base_time: Option<SimTime>,
    /// Time of the last bottleneck in the faulted directed run.
    pub directed_time: Option<SimTime>,
    /// Injector activity during the base run.
    pub base_stats: FaultStats,
    /// Injector activity during the directed run.
    pub directed_stats: FaultStats,
    /// Resources the base run marked unreachable.
    pub unreachable: Vec<ResourceName>,
    /// Pairs the base run left at the `Unknown` verdict.
    pub unknown_pairs: usize,
    /// Harvested directives steering the directed run.
    pub directive_count: usize,
}

/// Runs the degraded version-D experiment: a faulted base run at `loss`
/// sample-drop rate (optionally killing one node at `kill_at`),
/// directives harvested from the degraded record, and a directed re-run
/// under the *same* fault plan. The interesting number is
/// [`DegradedExperiment::reduction`]: how much of the paper's headline
/// speedup survives the faults.
pub fn run_degraded(loss: f64, kill_at: Option<SimTime>) -> DegradedExperiment {
    let mut plan = FaultPlan::none();
    plan.seed = 0x0D15_EA5E;
    plan.drop_rate = loss;
    if let Some(at) = kill_at {
        plan.kills.push(KillEvent {
            at,
            // Version D runs 8 processes on node09..node16; take the last.
            target: KillTarget::Node("node16".into()),
        });
    }
    let wl = PoissonWorkload::new(PoissonVersion::D);
    let session = Session::new();
    let config = SearchConfig {
        faults: plan.clone(),
        ..exp_config()
    };
    let base_run = session
        .diagnose_faulted(&wl, &config, "degraded-base", None)
        .expect("default config lints clean");
    let base = base_run.diagnosis.expect("no tool crash scheduled");
    let directives = history::extract(
        &base.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    let directive_count = directives.len();
    let directed_config = SearchConfig {
        faults: plan,
        ..exp_config()
    }
    .with_directives(directives);
    let directed_run = session
        .diagnose_faulted(&wl, &directed_config, "degraded-directed", None)
        .expect("harvested directives lint clean");
    let directed = directed_run.diagnosis.expect("no tool crash scheduled");
    let unknown_pairs = base
        .report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Unknown)
        .count();
    DegradedExperiment {
        loss,
        kill_at,
        base_time: base.report.time_of_last_bottleneck(),
        directed_time: directed.report.time_of_last_bottleneck(),
        base_stats: base_run.stats,
        directed_stats: directed_run.stats,
        unreachable: base.report.unreachable.clone(),
        unknown_pairs,
        directive_count,
    }
}

impl DegradedExperiment {
    /// Fractional diagnosis-time reduction of the directed run against
    /// the base run (e.g. `0.8` = 80 % faster). `None` when either run
    /// found no bottleneck.
    pub fn reduction(&self) -> Option<f64> {
        match (self.directed_time, self.base_time) {
            (Some(d), Some(b)) if b.as_micros() > 0 => {
                Some(1.0 - d.as_secs_f64() / b.as_secs_f64())
            }
            _ => None,
        }
    }

    /// Renders the experiment summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Degraded run: Poisson version D, {:.0}% sample loss{}\n\n",
            self.loss * 100.0,
            match self.kill_at {
                Some(at) => format!(", node16 killed at t = {at}"),
                None => String::new(),
            }
        );
        out.push_str(&format!(
            "base run:     last bottleneck at {} s ({} samples dropped, {} kills)\n",
            fmt_time(self.base_time),
            self.base_stats.dropped,
            self.base_stats.kills_fired
        ));
        out.push_str(&format!(
            "directed run: last bottleneck at {} s ({} samples dropped, {} kills)\n",
            fmt_time(self.directed_time),
            self.directed_stats.dropped,
            self.directed_stats.kills_fired
        ));
        out.push_str(&format!(
            "directives harvested from the degraded record: {}\n",
            self.directive_count
        ));
        out.push_str(&format!(
            "unknown pairs in base run: {}; unreachable resources: {}\n",
            self.unknown_pairs,
            if self.unreachable.is_empty() {
                "none".to_string()
            } else {
                self.unreachable
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        ));
        match self.reduction() {
            Some(r) => out.push_str(&format!("diagnosis-time reduction: {:.1}%\n", r * 100.0)),
            None => out.push_str("diagnosis-time reduction: undefined (no bottlenecks found)\n"),
        }
        out
    }
}

/// Result of the overload soak: Poisson version D diagnosed unloaded,
/// then again under a sample flood plus request storms with admission
/// control enabled. The soak's claim is *graceful* degradation: the
/// loaded run must still converge on the same whole-program bottlenecks,
/// keep in-flight instrumentation under the configured bound, conclude
/// `Saturated` (not `False`) for the starved parts of the search space,
/// and harvest no directives from under a saturated resource.
#[derive(Debug, Clone)]
pub struct OverloadSoak {
    /// Sample-pressure multiplier of the loaded run.
    pub flood: f64,
    /// In-flight bound the loaded run was configured with.
    pub max_in_flight: usize,
    /// Per-batch sample budget of the loaded run.
    pub sample_budget: u64,
    /// Whole-program bottleneck hypotheses of the unloaded run.
    pub base_top: Vec<String>,
    /// Whole-program bottleneck hypotheses of the loaded run.
    pub loaded_top: Vec<String>,
    /// Admission-layer activity during the loaded run.
    pub admission: AdmissionStats,
    /// Fault-injector activity during the loaded run.
    pub stats: FaultStats,
    /// Pairs the loaded run concluded `Saturated`.
    pub saturated_pairs: usize,
    /// Resources whose admission breakers opened during the loaded run.
    pub saturated: Vec<ResourceName>,
    /// Directives harvested from the loaded record.
    pub directive_count: usize,
    /// Harvested directives referencing a saturated resource (HL026
    /// hits) — must stay zero, or extraction leaked conclusions drawn
    /// from shed instrumentation.
    pub leaked_directives: usize,
}

/// The whole-program bottleneck hypotheses of a diagnosis, sorted.
fn top_level_bottlenecks(d: &Diagnosis) -> Vec<String> {
    let mut top: Vec<String> = d
        .report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.is_whole_program())
        .map(|(h, _)| h)
        .collect();
    top.sort();
    top.dedup();
    top
}

/// Runs the overload soak at a given sample-pressure factor (the
/// acceptance scenario uses `5.0`): an unloaded version-D baseline, then
/// the same diagnosis under `flood`× sample pressure, periodic request
/// storms, and a per-batch budget sized below the real interval stream —
/// so real data is shed, the highest-ranked processes starve, and their
/// breakers open.
pub fn run_overload_soak(flood: f64) -> OverloadSoak {
    let mut plan = FaultPlan::none();
    plan.seed = 0x50AD;
    plan.sample_flood = flood;
    plan.request_storm_rate = 0.25;
    plan.request_storm_burst = 16;

    let admission = AdmissionConfig {
        // The real version-D stream runs 33.4k–34.8k interval units per
        // 250 ms driver batch, of which ranks 0–6 contribute at most
        // 31.7k. A budget between those two bounds always spares ranks
        // 0–6 (allowance is handed out in ascending rank order) and
        // always sheds the tail of rank 8's data — enough to trip its
        // breaker every run, little enough that the whole-program
        // experiments still reach the unloaded verdicts. In-flight
        // headroom stays at the default, which covers the search's
        // natural expansion bursts.
        sample_budget: 33_200,
        ..AdmissionConfig::enabled()
    };

    let base = base_diagnosis(PoissonVersion::D);

    let mut config = SearchConfig {
        faults: plan,
        ..exp_config()
    };
    config.collector.admission = admission.clone();
    let session = Session::new();
    let loaded_run = session
        .diagnose_faulted(
            &PoissonWorkload::new(PoissonVersion::D),
            &config,
            "soak",
            None,
        )
        .expect("default config lints clean");
    let loaded = loaded_run.diagnosis.expect("no tool crash scheduled");

    let saturated_pairs = loaded
        .report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::Saturated)
        .count();
    let directives = history::extract(
        &loaded.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    let directive_count = directives.len();
    let text = directives.to_text();
    let leaked_directives = histpc::lint::Linter::new()
        .directives(&text, "soak.dirs")
        .against(&loaded.record)
        .run()
        .with_code("HL026")
        .len();

    OverloadSoak {
        flood,
        max_in_flight: admission.max_in_flight,
        sample_budget: admission.sample_budget,
        base_top: top_level_bottlenecks(&base),
        loaded_top: top_level_bottlenecks(&loaded),
        admission: loaded.report.admission,
        stats: loaded_run.stats,
        saturated_pairs,
        saturated: loaded.record.saturated.clone(),
        directive_count,
        leaked_directives,
    }
}

impl OverloadSoak {
    /// True when the loaded run found the same whole-program bottlenecks
    /// as the unloaded baseline (and the baseline found any at all).
    pub fn converged(&self) -> bool {
        !self.base_top.is_empty() && self.base_top == self.loaded_top
    }

    /// True when the admission layer actually engaged *and* held its
    /// guarantees: samples were shed, at least one breaker opened into a
    /// `Saturated` verdict, in-flight occupancy stayed within the bound,
    /// and nothing was harvested from under a saturated resource.
    pub fn degraded_gracefully(&self) -> bool {
        self.admission.shed_samples > 0
            && self.admission.breaker_opens > 0
            && self.saturated_pairs > 0
            && !self.saturated.is_empty()
            && self.admission.peak_in_flight <= self.max_in_flight
            && self.leaked_directives == 0
    }

    /// Renders the soak summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Overload soak: Poisson version D, {:.0}x sample pressure, \
             storm bursts of {} phantom requests\n\n",
            self.flood, self.stats.storm_requests
        );
        out.push_str(&format!(
            "admission bounds: {} in-flight, {} sample units/batch\n",
            self.max_in_flight, self.sample_budget
        ));
        out.push_str(&format!(
            "pressure: {} flood units injected, {} sample units shed, \
             peak in-flight {}\n",
            self.stats.flooded, self.admission.shed_samples, self.admission.peak_in_flight
        ));
        out.push_str(&format!(
            "health: {} breaker opens, {} readmits, {} saturated refusals, \
             {} Saturated pairs\n",
            self.admission.breaker_opens,
            self.admission.breaker_readmits,
            self.admission.saturated_refusals,
            self.saturated_pairs
        ));
        out.push_str(&format!(
            "saturated resources: {}\n",
            if self.saturated.is_empty() {
                "none".to_string()
            } else {
                self.saturated
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            }
        ));
        out.push_str(&format!(
            "top-level bottlenecks: unloaded [{}] vs loaded [{}]\n",
            self.base_top.join(", "),
            self.loaded_top.join(", ")
        ));
        out.push_str(&format!(
            "directives harvested: {} ({} referencing saturated resources)\n",
            self.directive_count, self.leaked_directives
        ));
        out
    }
}

// ---------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------

/// Figure 1: the resource hierarchies of the "Tester" program.
pub fn fig1_hierarchies() -> String {
    let wl = TesterWorkload::new();
    let collector = Collector::new(wl.app_spec(), CollectorConfig::default());
    let mut out = String::from(
        "Figure 1: Representing program Tester.\nThree resource hierarchies: Code, Machine, and Process.\n\n",
    );
    for h in collector.space().hierarchies() {
        if h.name() == "SyncObject" {
            continue; // Tester has no sync objects; fig. 1 shows three trees
        }
        out.push_str(&h.render(false));
        out.push('\n');
    }
    out
}

/// Figure 2: a Performance Consultant search in progress — the SHG in
/// list-box form after `until` of application time.
pub fn fig2_shg_snapshot(until: SimTime) -> String {
    use histpc::consultant::{Consultant, HypothesisTree};
    let wl = PoissonWorkload::new(PoissonVersion::C);
    let config = exp_config();
    let mut engine = wl.build_engine();
    let mut collector = Collector::new(engine.app().clone(), config.collector.clone());
    let mut consultant = Consultant::new(
        HypothesisTree::standard(),
        config.directives.clone(),
        config.window,
        &collector,
    );
    consultant.tick(SimTime::ZERO, &mut collector);
    collector.apply_perturbation(&mut engine);
    let mut now = SimTime::ZERO;
    while now < until && !consultant.is_quiescent() {
        now += config.sample;
        engine.run_until(now);
        let ivs = engine.drain_intervals();
        collector.observe_batch(&ivs);
        consultant.tick(now, &mut collector);
        collector.apply_perturbation(&mut engine);
    }
    format!(
        "Figure 2: A Performance Consultant search in progress (t = {now}).\n\
         [T] tested true, [F] tested false, [?] testing, [.] pending, [P] pruned\n\n{}",
        consultant.shg().render(consultant.tree())
    )
}

/// Figure 3: the combined Code hierarchies of versions A and B with
/// execution tags, plus the suggested mapping directives.
pub fn fig3_mappings() -> String {
    use histpc::instr::Binder;
    let a = Binder::new(PoissonWorkload::new(PoissonVersion::A).app_spec()).build_space();
    let b = Binder::new(PoissonWorkload::new(PoissonVersion::B).app_spec()).build_space();
    let mut merged = a.hierarchy("Code").expect("Code exists").clone();
    merged
        .merge_tagged(b.hierarchy("Code").expect("Code exists"), 1, 2)
        .expect("same hierarchy");
    let a_names: Vec<ResourceName> = a.hierarchies().iter().flat_map(|h| h.all_names()).collect();
    let b_names: Vec<ResourceName> = b.hierarchies().iter().flat_map(|h| h.all_names()).collect();
    let mappings = MappingSet::suggest(&a_names, &b_names);
    format!(
        "Figure 3: Execution map for Versions A and B (Code hierarchy).\n\
         Tags: {{1}} = only version A, {{2}} = only version B, {{1,2}} = both.\n\n{}\n\
         Mappings used:\n{}",
        merged.render(true),
        mappings.to_text()
    )
}
