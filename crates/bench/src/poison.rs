//! Poison soak: diagnosis under adversarial historical guidance.
//!
//! The trust loop (provenance → shadow audits → trust ledger) exists so
//! that history can *lie* without the diagnosis lying with it. This
//! soak proves it: for each Poisson version A–D it runs the no-history
//! baseline, a clean history-directed run, and a run whose harvested
//! directives were adversarially poisoned at the acceptance rate (25%
//! injected prunes hiding true bottlenecks, raised thresholds, stale
//! mappings) — with the shadow-audit loop armed. The gates:
//!
//! * **completeness** — the poisoned run's final report still contains
//!   every true bottleneck the no-history baseline finds;
//! * **retention** — the poisoned runs keep at least half of the
//!   diagnosis-time reduction the clean history buys (aggregated over
//!   the versions);
//! * **provenance** — every revocation names the poisoned source run,
//!   and the trust ledger pins it with a decayed score;
//! * **identity** — at zero poison rates and audit budget 0 the
//!   directed record is bit-identical to the plain directed run (the
//!   pre-trust baseline);
//! * **recovery** — a `trust-ledger-corrupt` fault garbles `TRUST`
//!   into something `parse` rejects, and the next load falls back to
//!   an empty ledger (full trust) instead of erroring.
//!
//! All poison draws come from fixed substreams of the plan seed, so
//! the soak is deterministic end to end (diagnosis times are simulated
//! application times, not wall clock).

use crate::{base_diagnosis, directed_diagnosis, exp_config, truth_of};
use histpc::consultant::{poison_directives, PoisonSummary, SearchDirectives};
use histpc::history::trust::{TrustLedger, FULL_SCORE, TRUST_FILE};
use histpc::history::{self, format::write_record, ExtractionOptions};
use histpc::prelude::*;
use std::path::PathBuf;

/// Which poison kind a soak run exercises (the nightly matrix runs one
/// soak per kind; the PR gate runs `All`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoisonKind {
    /// `poison-prune`: injected exact-pair prunes over true bottlenecks.
    Prune,
    /// `poison-threshold`: thresholds raised to 0.95 on bottlenecked
    /// hypotheses.
    Threshold,
    /// `stale-mapping`: harvested directives re-pointed at a resource
    /// no workload has.
    StaleMapping,
    /// `trust-ledger-corrupt`: the `TRUST` sidecar garbled mid-run.
    TrustLedger,
    /// Every kind at once — the acceptance scenario.
    All,
}

impl PoisonKind {
    /// The flag spelling (and fault-kind name) of this kind.
    pub fn label(self) -> &'static str {
        match self {
            PoisonKind::Prune => "poison-prune",
            PoisonKind::Threshold => "poison-threshold",
            PoisonKind::StaleMapping => "stale-mapping",
            PoisonKind::TrustLedger => "trust-ledger-corrupt",
            PoisonKind::All => "all",
        }
    }

    /// Parses a `--kind` argument.
    pub fn parse(s: &str) -> Option<PoisonKind> {
        match s {
            "poison-prune" => Some(PoisonKind::Prune),
            "poison-threshold" => Some(PoisonKind::Threshold),
            "stale-mapping" => Some(PoisonKind::StaleMapping),
            "trust-ledger-corrupt" => Some(PoisonKind::TrustLedger),
            "all" => Some(PoisonKind::All),
            _ => None,
        }
    }

    /// The fault plan of this kind at the acceptance rate (25% of every
    /// applicable poison opportunity).
    pub fn plan(self) -> FaultPlan {
        let mut plan = FaultPlan::none();
        plan.seed = 0x9050;
        match self {
            PoisonKind::Prune => plan.poison_prune_rate = POISON_RATE,
            PoisonKind::Threshold => plan.poison_threshold_rate = POISON_RATE,
            PoisonKind::StaleMapping => plan.stale_mapping_rate = POISON_RATE,
            PoisonKind::TrustLedger => plan.trust_ledger_corrupt = true,
            PoisonKind::All => {
                plan.poison_prune_rate = POISON_RATE;
                plan.poison_threshold_rate = POISON_RATE;
                plan.stale_mapping_rate = POISON_RATE;
            }
        }
        plan
    }

    /// Whether this kind produces revocations. Every kind does:
    /// poisoned prunes and thresholds are convicted by probes and
    /// tripped watches, and stale-mapped directives — whose focus names
    /// a resource the program does not have — are convicted statically
    /// at audit-arm time. Only the ledger-corruption kind injects no
    /// directives at all.
    pub fn expects_revocations(self) -> bool {
        !matches!(self, PoisonKind::TrustLedger)
    }
}

/// The acceptance poison rate from the issue: a quarter of the guidance
/// lies.
pub const POISON_RATE: f64 = 0.25;

/// Audit budget the poisoned runs are armed with. It does not need to
/// cover every injected directive: once a source collects
/// `SOURCE_REVOCATION_FAILURES` convictions the consultant revokes the
/// source wholesale, so the budget only has to buy enough independent
/// probes to catch a lying source a handful of times.
pub const AUDIT_BUDGET: u32 = 32;

/// One version's poisoned-vs-clean comparison.
#[derive(Debug, Clone)]
pub struct PoisonVersionResult {
    /// The Poisson version letter.
    pub version: &'static str,
    /// True bottlenecks of the no-history baseline.
    pub truth: usize,
    /// Baseline bottlenecks the poisoned run failed to report.
    pub missed: Vec<String>,
    /// Time of the baseline's last bottleneck, in microseconds.
    pub base_us: Option<u64>,
    /// Same for the clean history-directed run.
    pub clean_us: Option<u64>,
    /// Same for the poisoned history-directed run.
    pub poisoned_us: Option<u64>,
    /// What the poisoner injected or mangled.
    pub summary: PoisonSummary,
    /// Shadow audits concluded during the poisoned run.
    pub audits: usize,
    /// Audits that convicted (and revoked) their directive.
    pub revocations: usize,
    /// Revocations naming anything *other* than the poisoned source
    /// run — must stay zero, or provenance lost track of the liar.
    pub mislabeled_revocations: usize,
    /// Trust-ledger score of the poisoned source after the run.
    pub score: u32,
    /// Revocations the ledger failed to pin — must stay zero.
    pub unpinned_revocations: usize,
}

impl PoisonVersionResult {
    /// Microseconds of diagnosis time the clean history saved over the
    /// baseline (negative = clean was slower).
    pub fn clean_saving_us(&self) -> Option<i64> {
        Some(self.base_us? as i64 - self.clean_us? as i64)
    }

    /// Same saving for the poisoned run.
    pub fn poisoned_saving_us(&self) -> Option<i64> {
        Some(self.base_us? as i64 - self.poisoned_us? as i64)
    }
}

/// The whole soak: per-version results plus the one-shot identity and
/// ledger-recovery legs.
#[derive(Debug, Clone)]
pub struct PoisonSoak {
    /// The kind this soak exercised.
    pub kind: PoisonKind,
    /// Per-version poisoned-vs-clean comparisons (empty for the
    /// `trust-ledger-corrupt` kind, which has no directive poison).
    pub results: Vec<PoisonVersionResult>,
    /// Zero rates + audit budget 0 reproduced the plain directed
    /// record byte for byte (run once, on version A).
    pub zero_identical: Option<bool>,
    /// The `trust-ledger-corrupt` fault left a `TRUST` that fails to
    /// parse, and the next load fell back to an empty (full-trust)
    /// ledger with the diagnosis unharmed.
    pub ledger_recovered: Option<bool>,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-poison-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The clean harvest of a base run, stamped as historical guidance.
fn clean_harvest(base: &Diagnosis, source: &str) -> SearchDirectives {
    let mut d = history::extract(
        &base.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    d.stamp_provenance(source, 1);
    d
}

/// Runs one version's poisoned leg and gathers every per-version gate
/// input. Also used by the bench snapshot's poisoned-vs-clean scenario.
pub fn run_poison_version(version: PoissonVersion, plan: &FaultPlan) -> PoisonVersionResult {
    let label = version.label();
    let base = base_diagnosis(version);
    let truth = truth_of(&base);
    let clean_source = format!("poisson-{label}/clean");
    let poison_source = format!("poisson-{label}/poisoned");

    let clean = clean_harvest(&base, &clean_source);
    let clean_run = directed_diagnosis(version, clean.clone());

    let (poisoned, summary) = poison_directives(&clean, plan, &truth, &poison_source, 7);
    let dir = scratch(&format!("v{label}"));
    let session = Session::with_store(&dir).expect("scratch store opens");
    let mut config = exp_config().with_directives(poisoned);
    config.audit_budget = AUDIT_BUDGET;
    let poisoned_run = session
        .diagnose(
            &PoissonWorkload::new(version),
            &config,
            &format!("poisoned-{label}"),
        )
        .expect("poisoned directives still lint clean");

    let found = poisoned_run.report.bottleneck_set();
    let missed: Vec<String> = truth
        .iter()
        .filter(|pair| !found.contains(pair))
        .map(|(h, f)| format!("{h} @ {f}"))
        .collect();

    let ledger = TrustLedger::load(&dir);
    let failed: Vec<_> = poisoned_run.report.revocations();
    let mislabeled_revocations = failed
        .iter()
        .filter(|a| a.source_run != poison_source)
        .count();
    let unpinned_revocations = failed
        .iter()
        .filter(|a| !ledger.is_revoked(&a.source_run, &a.directive))
        .count();
    let result = PoisonVersionResult {
        version: label,
        truth: truth.len(),
        missed,
        base_us: base
            .report
            .time_of_last_bottleneck()
            .map(SimTime::as_micros),
        clean_us: clean_run
            .report
            .time_of_last_bottleneck()
            .map(SimTime::as_micros),
        poisoned_us: poisoned_run
            .report
            .time_of_last_bottleneck()
            .map(SimTime::as_micros),
        summary,
        audits: poisoned_run.report.audits.len(),
        revocations: failed.len(),
        mislabeled_revocations,
        score: ledger.score(&poison_source),
        unpinned_revocations,
    };
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The identity leg: zero poison rates and audit budget 0 must leave
/// the directed record bit-identical to a plain directed run — the
/// whole trust apparatus has to be invisible until armed.
fn run_zero_identity(version: PoissonVersion) -> bool {
    let base = base_diagnosis(version);
    let truth = truth_of(&base);
    let source = format!("poisson-{}/clean", version.label());
    let clean = clean_harvest(&base, &source);
    let plain = directed_diagnosis(version, clean.clone());
    let (unpoisoned, summary) = poison_directives(&clean, &FaultPlan::none(), &truth, "x/evil", 9);
    let through = directed_diagnosis(version, unpoisoned);
    summary.total() == 0 && write_record(&through.record) == write_record(&plain.record)
}

/// The recovery leg: a decayed ledger is garbled by the
/// `trust-ledger-corrupt` fault mid-run; the damage must be *detected*
/// (parse fails) and absorbed (load falls back to full trust), with the
/// diagnosis itself untouched.
fn run_ledger_recovery(seed: u64) -> bool {
    let dir = scratch("ledger");
    let session = Session::with_store(&dir).expect("scratch store opens");
    let mut decayed = TrustLedger::new();
    decayed.record_audit("poisson-A/poisoned", false);
    decayed.save(&dir).expect("seed ledger saves");

    let mut config = exp_config();
    config.faults = FaultPlan {
        seed,
        trust_ledger_corrupt: true,
        ..FaultPlan::none()
    };
    let run = session
        .diagnose_faulted(
            &PoissonWorkload::new(PoissonVersion::A),
            &config,
            "ledger",
            None,
        )
        .expect("faulted run drives");

    let on_disk = std::fs::read_to_string(dir.join(TRUST_FILE)).unwrap_or_default();
    let recovered = run.diagnosis.is_some()
        && TrustLedger::parse(&on_disk).is_none()
        && TrustLedger::load(&dir).is_empty();
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
    recovered
}

/// Runs the poison soak for one kind over the Poisson versions A–D.
pub fn run_poison_soak(kind: PoisonKind) -> PoisonSoak {
    let plan = kind.plan();
    let results = if kind == PoisonKind::TrustLedger {
        Vec::new()
    } else {
        [
            PoissonVersion::A,
            PoissonVersion::B,
            PoissonVersion::C,
            PoissonVersion::D,
        ]
        .into_iter()
        .enumerate()
        .map(|(i, v)| {
            // A per-version seed: one shared seed would poison every
            // version with the same draw sequence (the draws depend
            // only on the plan), collapsing the matrix to one sample.
            let mut versioned = plan.clone();
            versioned.seed = plan.seed + i as u64;
            run_poison_version(v, &versioned)
        })
        .collect()
    };
    let zero_identical =
        (kind != PoisonKind::TrustLedger).then(|| run_zero_identity(PoissonVersion::A));
    let ledger_recovered = matches!(kind, PoisonKind::TrustLedger | PoisonKind::All)
        .then(|| run_ledger_recovery(plan.seed));
    PoisonSoak {
        kind,
        results,
        zero_identical,
        ledger_recovered,
    }
}

impl PoisonSoak {
    /// Every baseline bottleneck survived the poison, in every version.
    pub fn complete(&self) -> bool {
        self.results.iter().all(|r| r.missed.is_empty())
    }

    /// Aggregate fraction of the clean-history diagnosis-time saving
    /// the poisoned runs kept (1.0 = all of it; `None` when the clean
    /// history saved nothing to keep).
    pub fn retention(&self) -> Option<f64> {
        let clean: i64 = self
            .results
            .iter()
            .filter_map(|r| r.clean_saving_us())
            .sum();
        let poisoned: i64 = self
            .results
            .iter()
            .filter_map(|r| r.poisoned_saving_us())
            .sum();
        (clean > 0).then(|| poisoned as f64 / clean as f64)
    }

    /// The acceptance bound: at least half the clean saving retained.
    pub fn retained(&self) -> bool {
        self.retention().is_none_or(|f| f >= 0.5)
    }

    /// Every revocation named the poisoned source run and was pinned in
    /// the ledger with a decayed score.
    pub fn provenance_held(&self) -> bool {
        self.results.iter().all(|r| {
            r.mislabeled_revocations == 0
                && r.unpinned_revocations == 0
                && (r.revocations == 0 || r.score < FULL_SCORE)
        })
    }

    /// The audit loop actually engaged (for kinds that can revoke).
    pub fn audits_engaged(&self) -> bool {
        !self.kind.expects_revocations()
            || (self.results.iter().map(|r| r.audits).sum::<usize>() > 0
                && self.results.iter().map(|r| r.revocations).sum::<usize>() > 0)
    }

    /// Renders the soak summary.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Poison soak: kind {}, rate {POISON_RATE}, audit budget {AUDIT_BUDGET}\n\n",
            self.kind.label()
        );
        for r in &self.results {
            out.push_str(&format!(
                "version {}: {} injected ({} prunes, {} thresholds, {} staled), \
                 {} audits, {} revocations ({} mislabeled, {} unpinned)\n",
                r.version,
                r.summary.total(),
                r.summary.prunes_injected,
                r.summary.thresholds_raised,
                r.summary.mappings_staled,
                r.audits,
                r.revocations,
                r.mislabeled_revocations,
                r.unpinned_revocations
            ));
            out.push_str(&format!(
                "  last bottleneck: base {} s, clean {} s, poisoned {} s; \
                 truth {}/{} found; poisoned-source score {}\n",
                fmt_us(r.base_us),
                fmt_us(r.clean_us),
                fmt_us(r.poisoned_us),
                r.truth - r.missed.len(),
                r.truth,
                r.score
            ));
            for m in &r.missed {
                out.push_str(&format!("  MISSED: {m}\n"));
            }
        }
        if let Some(f) = self.retention() {
            out.push_str(&format!(
                "retention: {:.0}% of the clean-history saving kept\n",
                f * 100.0
            ));
        }
        if let Some(ok) = self.zero_identical {
            out.push_str(&format!("zero-poison identity: {ok}\n"));
        }
        if let Some(ok) = self.ledger_recovered {
            out.push_str(&format!("trust-ledger corrupt recovery: {ok}\n"));
        }
        out
    }
}

fn fmt_us(us: Option<u64>) -> String {
    match us {
        Some(us) => format!("{:.1}", us as f64 / 1e6),
        None => "-".into(),
    }
}
