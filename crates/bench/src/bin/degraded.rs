//! Degraded-run experiment: re-measures the paper's headline
//! diagnosis-time reduction with a lossy, partially-dead daemon layer
//! injected under both the base and the directed run.
//!
//! ```text
//! degraded --loss RATE [--kill-at SECS] [--assert-reduction FRAC]
//! ```
//!
//! `--loss 0.10` drops 10 % of sample intervals; `--kill-at 5` kills one
//! node (node16 of the version-D Poisson run) at t = 5 s; with
//! `--assert-reduction 0.75` the process exits non-zero unless the
//! directed run is at least 75 % faster than the base run — the CI gate
//! that the Table-3-shaped result survives faults.

use histpc::prelude::SimTime;
use histpc_bench::run_degraded;

fn bad(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: degraded --loss RATE [--kill-at SECS] [--assert-reduction FRAC]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut loss: Option<f64> = None;
    let mut kill_at: Option<SimTime> = None;
    let mut assert_reduction: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        let Some(value) = args.get(i + 1) else {
            bad(&format!("missing value for {}", args[i]));
        };
        match args[i].as_str() {
            "--loss" => match value.parse::<f64>() {
                Ok(v) if (0.0..=1.0).contains(&v) => loss = Some(v),
                _ => bad("--loss wants a rate in [0, 1]"),
            },
            "--kill-at" => match value.parse::<f64>() {
                Ok(v) if v >= 0.0 => kill_at = Some(SimTime::from_micros((v * 1e6) as u64)),
                _ => bad("--kill-at wants a non-negative time in seconds"),
            },
            "--assert-reduction" => match value.parse::<f64>() {
                Ok(v) if (0.0..1.0).contains(&v) => assert_reduction = Some(v),
                _ => bad("--assert-reduction wants a fraction in [0, 1)"),
            },
            other => bad(&format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    let Some(loss) = loss else {
        bad("--loss is required");
    };

    let exp = run_degraded(loss, kill_at);
    print!("{}", exp.render());
    if let Some(want) = assert_reduction {
        match exp.reduction() {
            Some(got) if got >= want => {
                println!(
                    "PASS: reduction {:.1}% >= required {:.1}%",
                    got * 100.0,
                    want * 100.0
                );
            }
            Some(got) => {
                eprintln!(
                    "FAIL: reduction {:.1}% < required {:.1}%",
                    got * 100.0,
                    want * 100.0
                );
                std::process::exit(1);
            }
            None => {
                eprintln!("FAIL: no reduction measurable (a run found no bottlenecks)");
                std::process::exit(1);
            }
        }
    }
}
