//! Regenerates the paper's Figure 2 (a PC search in progress).
use histpc::prelude::SimTime;
fn main() {
    println!(
        "{}",
        histpc_bench::fig2_shg_snapshot(SimTime::from_secs(12))
    );
}
