//! Regenerates the paper's Table 3 (directives across code versions).
fn main() {
    let t0 = std::time::Instant::now();
    let table = histpc_bench::run_table3();
    println!("{}", table.render());
    eprintln!("(generated in {:?})", t0.elapsed());
}
