//! Regenerates the paper's Table 1.
fn main() {
    let t0 = std::time::Instant::now();
    let table = histpc_bench::run_table1();
    println!("{}", table.render());
    eprintln!("(generated in {:?})", t0.elapsed());
}
