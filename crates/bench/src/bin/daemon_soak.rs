//! Daemon soak: N tenants hammer one real `histpcd` child process over
//! its Unix socket, each session under a randomized (but seeded, fully
//! reproducible) fault plan drawn from the whole menu — sim-level
//! faults shipped in the `start` request plus wire-level faults the
//! client's own [`WireInjector`] inflicts on the transport.
//!
//! ```text
//! daemon_soak [--tenants N] [--sessions M] [--seed S] [--zero-faults]
//!             [--assert] [--keep] [--daemon-bin PATH]
//! ```
//!
//! The soak checks the daemon acceptance gates:
//!
//! * every session a tenant starts terminates with a classification
//!   (completed / recovered / degraded / abandoned) — flaky wires,
//!   torn requests, and quota contention included;
//! * a daemon SIGKILLed mid-serve leaves a store the next incarnation
//!   fully recovers: the checkpointed lease is re-adopted and runs to
//!   a classified end with a stored record, the checkpoint-less lease
//!   is classified abandoned, the damaged lease file is removed, the
//!   lease epoch advances, and no lease file survives classification;
//! * after one `repair` pass the shared store has **zero** integrity
//!   errors, no matter what the fault plans did to it;
//! * with `--zero-faults`, every session completes and its report body
//!   is byte-identical to an unsupervised in-process
//!   `Session::diagnose` of the same workload/config/label — the whole
//!   daemon stack adds no behaviour on the healthy path.
//!
//! With `--assert` the process exits non-zero unless every gate holds;
//! this is the CI entry point. `--keep` leaves the scratch store on
//! disk. The `histpcd` binary is found next to this executable unless
//! `--daemon-bin` points elsewhere (CI must build both packages).

use histpc::faults::WireInjector;
use histpc::history::format::write_record;
use histpc::history::fsck::fsck;
use histpc::history::lease::{self, Lease};
use histpc::prelude::*;
use histpc::remote::{Client, Request};
use histpc_daemon::SessionSpec;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::Duration;

fn bad(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: daemon_soak [--tenants N] [--sessions M] [--seed S] [--zero-faults] \
         [--assert] [--keep] [--daemon-bin PATH]"
    );
    std::process::exit(2);
}

/// SplitMix64 — a tiny seeded generator so fault plans are a pure
/// function of `(--seed, tenant, session)` and a failing soak can be
/// replayed exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// The faults rolled for one session: the sim-level menu (shipped to
/// the daemon in the `start` request) plus wire-level client faults
/// (inflicted locally by the [`WireInjector`]). `wire-daemon-kill` is
/// not rolled — the kill scenario is staged explicitly below so its
/// recovery gates stay deterministic.
fn roll_faults(rng: &mut Rng, plan_seed: u64) -> (FaultPlan, String) {
    let mut plan = FaultPlan::none();
    plan.seed = plan_seed;
    let mut parts = Vec::new();
    if rng.chance(30) {
        let at = rng.range(300_000, 2_300_000);
        plan.tool_crash_at = Some(SimTime::from_micros(at));
        parts.push(format!("crash@{}us", at));
    }
    if rng.chance(20) {
        plan.torn_write = true;
        parts.push("torn-write".into());
    }
    if rng.chance(20) {
        plan.partial_journal = true;
        parts.push("partial-journal".into());
    }
    if rng.chance(25) {
        let flood = 2.0 + (rng.range(0, 40) as f64) / 10.0;
        plan.sample_flood = flood;
        parts.push(format!("flood×{flood:.1}"));
    }
    if rng.chance(15) {
        plan.drop_rate = (rng.range(5, 30) as f64) / 100.0;
        parts.push(format!("drop{:.0}%", plan.drop_rate * 100.0));
    }
    if rng.chance(30) {
        plan.wire_conn_drop_rate = (rng.range(10, 40) as f64) / 100.0;
        parts.push(format!("conn-drop{:.0}%", plan.wire_conn_drop_rate * 100.0));
    }
    if rng.chance(25) {
        plan.wire_torn_request_rate = (rng.range(5, 30) as f64) / 100.0;
        parts.push(format!(
            "torn-req{:.0}%",
            plan.wire_torn_request_rate * 100.0
        ));
    }
    if rng.chance(15) {
        plan.wire_slow_client_ms = rng.range(1, 10);
        parts.push(format!("slow-client{}ms", plan.wire_slow_client_ms));
    }
    let summary = if parts.is_empty() {
        "healthy".to_string()
    } else {
        parts.join(" ")
    };
    (plan, summary)
}

/// The in-process mirror of the daemon's per-session search config for
/// a fault-free spec (window 800ms, sample 100ms, 120s bound, 2s
/// stall), used for the `--zero-faults` bit-identity gate.
fn local_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(120),
        stall: Some(SimDuration::from_secs(2)),
        ..SearchConfig::default()
    }
}

/// Spawns `histpcd` on the store/socket and waits for the socket to
/// appear (the daemon binds it only after lease recovery finishes).
fn spawn_daemon(bin: &Path, store: &Path, socket: &Path) -> Child {
    let child = match Command::new(bin)
        .arg("--store")
        .arg(store)
        .arg("--socket")
        .arg(socket)
        .arg("--stall-ms")
        .arg("30000")
        .spawn()
    {
        Ok(c) => c,
        Err(e) => bad(&format!("cannot spawn {}: {e}", bin.display())),
    };
    for _ in 0..200 {
        if socket.exists() {
            return child;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    bad(&format!(
        "daemon never bound {} (is the store locked?)",
        socket.display()
    ));
}

/// One tenant's view of one finished session.
struct SessionResult {
    tenant: String,
    label: String,
    /// Terminal classification, or an error description.
    state: String,
}

fn classified(state: &str) -> bool {
    matches!(state, "completed" | "recovered" | "degraded" | "abandoned")
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tenants: usize = 8;
    let mut sessions: usize = 2;
    let mut seed: u64 = 1;
    let mut zero_faults = false;
    let mut check = false;
    let mut keep = false;
    let mut daemon_bin: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tenants" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --tenants");
                };
                match value.parse::<usize>() {
                    Ok(v) if v >= 1 => tenants = v,
                    _ => bad("--tenants wants a count >= 1"),
                }
                i += 2;
            }
            "--sessions" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --sessions");
                };
                match value.parse::<usize>() {
                    Ok(v) if v >= 1 => sessions = v,
                    _ => bad("--sessions wants a count >= 1"),
                }
                i += 2;
            }
            "--seed" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --seed");
                };
                match value.parse::<u64>() {
                    Ok(v) => seed = v,
                    Err(_) => bad("--seed wants a number"),
                }
                i += 2;
            }
            "--daemon-bin" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --daemon-bin");
                };
                daemon_bin = Some(PathBuf::from(value));
                i += 2;
            }
            "--zero-faults" => {
                zero_faults = true;
                i += 1;
            }
            "--assert" => {
                check = true;
                i += 1;
            }
            "--keep" => {
                keep = true;
                i += 1;
            }
            other => bad(&format!("unknown flag {other:?}")),
        }
    }

    // The daemon executable: next to us in the target dir unless
    // overridden. (It lives in another crate, so `cargo run --bin
    // daemon_soak` alone does not build it — CI builds the workspace.)
    let bin = daemon_bin.unwrap_or_else(|| {
        std::env::current_exe()
            .expect("current_exe")
            .with_file_name("histpcd")
    });
    if !bin.exists() {
        bad(&format!(
            "no histpcd at {} — build it (cargo build -p histpc-daemon) or pass --daemon-bin",
            bin.display()
        ));
    }

    let dir = std::env::temp_dir().join(format!("histpc-dsoak-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        bad(&format!("cannot create scratch dir: {e}"));
    }
    let store = dir.join("store");
    let socket = dir.join("histpcd.sock");

    // One plan per (tenant, session), a pure function of the seed.
    // Labels are globally unique: all tenants share one store app
    // namespace, which is exactly the contention under test.
    let mut rng = Rng(seed);
    let mut plans: Vec<Vec<(FaultPlan, String, u64)>> = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let mut row = Vec::with_capacity(sessions);
        for s in 0..sessions {
            let idx = (t * sessions + s) as u64;
            let plan_seed = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let (plan, summary) = if zero_faults {
                (FaultPlan::none(), "healthy".to_string())
            } else {
                roll_faults(&mut rng, plan_seed)
            };
            row.push((plan, summary, plan_seed));
        }
        plans.push(row);
    }

    println!(
        "daemon_soak: {tenants} tenant(s) × {sessions} session(s), seed {seed}{}",
        if zero_faults { ", zero faults" } else { "" }
    );
    for (t, row) in plans.iter().enumerate() {
        for (s, (_, summary, _)) in row.iter().enumerate() {
            println!("  plan soak-t{t:02}-s{s:02}: {summary}");
        }
    }

    let mut child = spawn_daemon(&bin, &store, &socket);

    // Pre-kill epoch, for the recovery gate.
    let epoch_before = {
        let mut probe = Client::new(&socket, "soak-probe");
        match probe.expect_ok(&Request::new("health")) {
            Ok(h) => h.get("epoch").and_then(|v| v.parse::<u64>().ok()),
            Err(e) => {
                let _ = child.kill();
                bad(&format!("daemon health probe failed: {e}"));
            }
        }
    };

    // The fleet: one thread per tenant, each starting all its sessions
    // (exercising the slot bulkhead) then attaching each to its
    // classified end. Wire-faulted plans get a faulty client; the
    // retrying Client plus idempotent `start` must absorb every tear.
    let results: Vec<SessionResult> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, row) in plans.iter().enumerate() {
            let socket = &socket;
            handles.push(scope.spawn(move || {
                let tenant = format!("tenant-{t:02}");
                let mut out = Vec::with_capacity(row.len());
                for (s, (plan, _, plan_seed)) in row.iter().enumerate() {
                    let label = format!("soak-t{t:02}-s{s:02}");
                    let mut client = Client::new(socket, &tenant);
                    client.max_attempts = 8;
                    if plan.touches_wire() {
                        client = client.with_injector(WireInjector::new(plan.clone()));
                    }
                    let mut req = Request::new("start")
                        .arg("app", "tester")
                        .arg("label", &label)
                        .arg("seed", plan_seed);
                    if !zero_faults {
                        req = req.arg("faults", plan.to_text());
                    }
                    if let Err(e) = client.expect_ok(&req) {
                        out.push(SessionResult {
                            tenant: tenant.clone(),
                            label,
                            state: format!("start failed: {e}"),
                        });
                        continue;
                    }
                    let attach = Request::new("attach")
                        .arg("label", &label)
                        .arg("wait-ms", 120_000u64);
                    let state = match client.expect_ok(&attach) {
                        Ok(resp) => resp.get("state").unwrap_or("missing-state").to_string(),
                        Err(e) => format!("attach failed: {e}"),
                    };
                    out.push(SessionResult {
                        tenant: tenant.clone(),
                        label,
                        state,
                    });
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("tenant thread panicked"))
            .collect()
    });

    for r in &results {
        println!("  {}/{}: {}", r.tenant, r.label, r.state);
        if !classified(&r.state) {
            eprintln!("  unclassified: {}/{}: {}", r.tenant, r.label, r.state);
        }
    }
    let all_classified = results.iter().all(|r| classified(&r.state));

    // --- Kill + recovery scenario (skipped under --zero-faults) -----
    //
    // SIGKILL the serving daemon, stage the exact disk state a
    // mid-session crash leaves (a halted session's checkpoint with its
    // lease, a lease with no checkpoint, a torn lease file), then
    // restart and hold the next incarnation to its recovery contract.
    let mut recovery_gates: Vec<(&'static str, bool)> = Vec::new();
    if zero_faults {
        let mut client = Client::new(&socket, "soak-probe");
        let _ = client.expect_ok(&Request::new("shutdown"));
        let _ = child.wait();
    } else {
        child.kill().expect("SIGKILL daemon");
        let _ = child.wait();
        println!("killed histpcd (pid {}) mid-serve", child.id());

        let crash_spec = SessionSpec {
            app: "tester".into(),
            label: "kill-crashed".into(),
            seed: Some(5),
            window_ms: 800,
            sample_ms: 100,
            max_time_ms: 120_000,
            faults: Some("histpc-faults v1\nseed 5\ncrash-tool 1000000\n".into()),
            budget: None,
            harvest_from: None,
            audit_budget: None,
        };
        let store_app = histpc::apps::build_workload("tester", Some(5))
            .expect("tester app")
            .app_spec()
            .name;
        {
            // In-process: run the session to its crash-halt so a real
            // checkpoint exists, exactly as the dead daemon would have
            // left it. The scope drops the store lock before restart.
            let session = Session::with_store(&store).expect("store reopens after SIGKILL");
            let workload = histpc::apps::build_workload("tester", Some(5)).expect("tester app");
            let mut config = local_config();
            config.faults =
                FaultPlan::parse(crash_spec.faults.as_deref().unwrap()).expect("crash plan");
            let run = session
                .diagnose_faulted(workload.as_ref(), &config, "kill-crashed", None)
                .expect("crash-halt run");
            assert!(run.halted.is_some(), "crash plan must halt the session");
        }
        lease::write_lease(
            &store,
            &Lease {
                tenant: "team-kill".into(),
                app: store_app.clone(),
                label: "kill-crashed".into(),
                epoch: epoch_before.unwrap_or(1),
                state: "active".into(),
                spec: crash_spec.to_spec_line(),
            },
        )
        .expect("write crashed lease");
        lease::write_lease(
            &store,
            &Lease {
                tenant: "team-kill".into(),
                app: store_app,
                label: "kill-hopeless".into(),
                epoch: epoch_before.unwrap_or(1),
                state: "active".into(),
                spec: String::new(),
            },
        )
        .expect("write hopeless lease");
        std::fs::write(
            store.join(lease::LEASE_DIR).join("torn.lease"),
            "histpc-frame v1 99 deadbeef\ntruncated",
        )
        .expect("write torn lease");

        let mut child2 = spawn_daemon(&bin, &store, &socket);
        let mut client = Client::new(&socket, "team-kill");
        let health = client
            .expect_ok(&Request::new("health"))
            .expect("health after restart");
        let epoch_after: Option<u64> = health.get("epoch").and_then(|v| v.parse().ok());
        let adopted: u64 = health
            .get("adopted")
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        println!(
            "restart: epoch {:?} -> {:?}, {adopted} lease(s) re-adopted",
            epoch_before, epoch_after
        );

        let crashed = client
            .expect_ok(
                &Request::new("attach")
                    .arg("label", "kill-crashed")
                    .arg("wait-ms", 120_000u64),
            )
            .expect("attach re-adopted session");
        let crashed_state = crashed.get("state").unwrap_or("missing").to_string();
        let report_body = client
            .expect_ok(&Request::new("report").arg("label", "kill-crashed"))
            .map(|r| r.body().len())
            .unwrap_or(0);
        let hopeless = client
            .expect_ok(&Request::new("attach").arg("label", "kill-hopeless"))
            .expect("attach abandoned session");
        println!(
            "  kill-crashed: {crashed_state} (adopted={}, report {} line(s)); \
             kill-hopeless: {}",
            crashed.get("adopted").unwrap_or("?"),
            report_body,
            hopeless.get("state").unwrap_or("missing"),
        );

        let leases_left = lease::read_leases(&store).map(|l| l.len()).unwrap_or(99);
        let _ = client.expect_ok(&Request::new("shutdown"));
        let _ = child2.wait();

        recovery_gates.push((
            "restarted daemon re-adopted the checkpointed lease",
            adopted >= 1
                && matches!(crashed_state.as_str(), "completed" | "recovered")
                && crashed.get("adopted") == Some("1"),
        ));
        recovery_gates.push((
            "re-adopted session stored a readable record",
            report_body > 0,
        ));
        recovery_gates.push((
            "checkpoint-less lease was classified abandoned",
            hopeless.get("state") == Some("abandoned"),
        ));
        recovery_gates.push((
            "lease epoch advanced across the kill",
            matches!((epoch_before, epoch_after), (Some(b), Some(a)) if a > b),
        ));
        recovery_gates.push(("no lease file survives classification", leases_left == 0));
    }

    // Post-mortem store maintenance, with every daemon gone: one
    // repair pass, then a read-only integrity walk.
    let session = Session::with_store(&store).expect("store reopens after shutdown");
    let store_handle = session.store().expect("soak session has a store");
    let notes = match store_handle.repair() {
        Ok(n) => n,
        Err(e) => bad(&format!("store repair failed: {e}")),
    };
    for n in &notes {
        println!("repair: {n}");
    }
    let findings = fsck(store_handle.root());
    let errors: Vec<_> = findings.iter().filter(|d| d.is_error()).collect();
    let warnings = findings.len() - errors.len();
    println!(
        "fsck: {} error(s), {warnings} warning(s) after repair",
        errors.len()
    );
    for d in &errors {
        eprintln!("  {d}");
    }

    // Zero-fault bit-identity: what the daemon stored and reported
    // must be exactly what a bare in-process diagnose produces.
    let mut divergent = Vec::new();
    if zero_faults {
        let bare = Session::new();
        let store_app = histpc::apps::build_workload("tester", Some(0))
            .expect("tester app")
            .app_spec()
            .name;
        for (t, row) in plans.iter().enumerate() {
            for (s, (_, _, plan_seed)) in row.iter().enumerate() {
                let label = format!("soak-t{t:02}-s{s:02}");
                let stored = match store_handle.load(&store_app, &label) {
                    Ok(r) => r,
                    Err(e) => {
                        divergent.push(format!("{label}: stored record unreadable: {e}"));
                        continue;
                    }
                };
                let workload =
                    histpc::apps::build_workload("tester", Some(*plan_seed)).expect("tester app");
                let d = bare
                    .diagnose(workload.as_ref(), &local_config(), &label)
                    .expect("zero-fault config lints clean");
                if write_record(&stored) != write_record(&d.record) {
                    divergent.push(format!(
                        "{label}: stored record differs from bare diagnosis"
                    ));
                }
            }
        }
        for m in &divergent {
            eprintln!("identity: {m}");
        }
    }

    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        println!("kept store at {}", dir.display());
    }

    if check {
        let mut failed = false;
        let mut gate = |name: &str, ok: bool| {
            if ok {
                println!("PASS: {name}");
            } else {
                eprintln!("FAIL: {name}");
                failed = true;
            }
        };
        gate(
            "every session terminated with a classification",
            all_classified && results.len() == tenants * sessions,
        );
        gate(
            "store is fsck-clean after one repair pass",
            errors.is_empty(),
        );
        for (name, ok) in &recovery_gates {
            gate(name, *ok);
        }
        if zero_faults {
            gate(
                "zero-fault fleet completed without intervention",
                results.iter().all(|r| r.state == "completed"),
            );
            gate(
                "reports byte-identical to in-process diagnoses",
                divergent.is_empty(),
            );
        }
        if failed {
            std::process::exit(1);
        }
    }
}
