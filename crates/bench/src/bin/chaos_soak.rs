//! Chaos soak: many supervised diagnosis sessions run *concurrently*
//! over one shared execution store, each under a randomized (but
//! seeded, fully reproducible) fault plan drawn from the whole fault
//! menu — tool crashes, torn record writes, partial journal appends,
//! sample floods, and process kills.
//!
//! ```text
//! chaos_soak [--sessions N] [--seed S] [--zero-faults] [--assert] [--keep]
//! ```
//!
//! The soak checks the supervision acceptance gates:
//!
//! * every session terminates with a classification (completed /
//!   recovered / degraded / abandoned) — nothing hangs, nothing is
//!   dropped from the report;
//! * after one `repair` pass the shared store has **zero** integrity
//!   errors (`fsck` finds no HL023), no matter what the fault plans
//!   did to it;
//! * with `--zero-faults`, every session completes and its stored
//!   record is byte-identical to an unsupervised `Session::diagnose`
//!   of the same workload/config/label — the supervisor adds no
//!   behaviour on the healthy path.
//!
//! With `--assert` the process exits non-zero unless every gate holds;
//! this is the CI entry point. `--keep` leaves the scratch store on
//! disk for inspection.

use histpc::history::format::write_record;
use histpc::history::fsck::fsck;
use histpc::prelude::*;
use histpc::supervise::Outcome as SupOutcome;
use std::time::Duration;

fn bad(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: chaos_soak [--sessions N] [--seed S] [--zero-faults] [--assert] [--keep]");
    std::process::exit(2);
}

/// SplitMix64 — a tiny seeded generator so fault plans are a pure
/// function of `(--seed, session index)` and a failing soak can be
/// replayed exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.next() % 100 < pct
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// The faults rolled for one session, with a printable summary.
fn roll_faults(rng: &mut Rng, plan_seed: u64) -> (FaultPlan, String) {
    let mut plan = FaultPlan::none();
    plan.seed = plan_seed;
    let mut parts = Vec::new();
    if rng.chance(35) {
        let at = rng.range(300_000, 2_300_000);
        plan.tool_crash_at = Some(SimTime::from_micros(at));
        parts.push(format!("crash@{}us", at));
    }
    if rng.chance(20) {
        plan.torn_write = true;
        parts.push("torn-write".into());
    }
    if rng.chance(20) {
        plan.partial_journal = true;
        parts.push("partial-journal".into());
    }
    if rng.chance(25) {
        let flood = 2.0 + (rng.range(0, 40) as f64) / 10.0;
        plan.sample_flood = flood;
        parts.push(format!("flood×{flood:.1}"));
    }
    if rng.chance(20) {
        let rank = (rng.range(0, 4)) as u16;
        let at = rng.range(800_000, 3_000_000);
        plan.kills.push(KillEvent {
            at: SimTime::from_micros(at),
            target: KillTarget::Proc(rank),
        });
        parts.push(format!("kill-p{rank}@{}us", at));
    }
    if rng.chance(15) {
        plan.drop_rate = (rng.range(5, 30) as f64) / 100.0;
        parts.push(format!("drop{:.0}%", plan.drop_rate * 100.0));
    }
    let summary = if parts.is_empty() {
        "healthy".to_string()
    } else {
        parts.join(" ")
    };
    (plan, summary)
}

/// The per-session search config: the quick synthetic profile plus a
/// deterministic in-loop stall deadline so a wedged drive loop always
/// halts at a checkpoint instead of spinning to `max_time`.
fn soak_config(plan: FaultPlan) -> SearchConfig {
    let mut config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(120),
        stall: Some(SimDuration::from_secs(2)),
        ..SearchConfig::default()
    };
    if plan.sample_flood > 0.0 {
        // Flooded sessions shed at the door instead of queueing forever.
        config.collector.admission.enabled = true;
    }
    config.faults = plan;
    config
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sessions: usize = 16;
    let mut seed: u64 = 1;
    let mut zero_faults = false;
    let mut check = false;
    let mut keep = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --sessions");
                };
                match value.parse::<usize>() {
                    Ok(v) if v >= 1 => sessions = v,
                    _ => bad("--sessions wants a count >= 1"),
                }
                i += 2;
            }
            "--seed" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --seed");
                };
                match value.parse::<u64>() {
                    Ok(v) => seed = v,
                    Err(_) => bad("--seed wants a number"),
                }
                i += 2;
            }
            "--zero-faults" => {
                zero_faults = true;
                i += 1;
            }
            "--assert" => {
                check = true;
                i += 1;
            }
            "--keep" => {
                keep = true;
                i += 1;
            }
            other => bad(&format!("unknown flag {other:?}")),
        }
    }

    let dir = std::env::temp_dir().join(format!("histpc-chaos-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let session = match Session::with_store(&dir) {
        Ok(s) => s,
        Err(e) => bad(&format!("cannot open scratch store: {e}")),
    };

    // One workload + fault plan per session, all a pure function of the
    // seed. The whole fleet shares one app namespace in one store;
    // distinct labels keep the records apart while every save contends
    // for the same advisory lock.
    let mut rng = Rng(seed);
    let mut workloads = Vec::with_capacity(sessions);
    let mut plans = Vec::with_capacity(sessions);
    for i in 0..sessions {
        let hot_node = (rng.next() % 2) as usize;
        let hot_proc = (rng.next() % 2) as usize;
        let heat = 1.5 + (rng.range(0, 100) as f64) / 100.0;
        workloads
            .push(SyntheticWorkload::balanced(2, 2, 0.1).with_hotspot(hot_node, hot_proc, heat));
        let plan_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let (plan, summary) = if zero_faults {
            (FaultPlan::none(), "healthy".to_string())
        } else {
            roll_faults(&mut rng, plan_seed)
        };
        plans.push((plan, summary));
    }

    let drivers: Vec<WorkloadSession> = (0..sessions)
        .map(|i| {
            WorkloadSession::new(
                &session,
                &workloads[i],
                soak_config(plans[i].0.clone()),
                format!("soak-{i:02}"),
            )
        })
        .collect();
    let refs: Vec<&dyn histpc::supervise::SessionDriver> = drivers
        .iter()
        .map(|d| d as &dyn histpc::supervise::SessionDriver)
        .collect();

    println!(
        "chaos_soak: {sessions} session(s), seed {seed}{}",
        if zero_faults { ", zero faults" } else { "" }
    );
    for (i, (_, summary)) in plans.iter().enumerate() {
        println!("  plan soak-{i:02}: {summary}");
    }

    let supervisor = Supervisor::new(SupervisorConfig {
        retry_budget: 3,
        stall: Some(Duration::from_secs(30)),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(50),
        ..SupervisorConfig::default()
    });
    let report = supervisor.run(&refs);
    print!("{}", report.render());
    for s in &report.sessions {
        for note in &s.notes {
            eprintln!("  [{}] {note}", s.label);
        }
    }

    // Post-mortem store maintenance: one repair pass, then a read-only
    // integrity walk. Whatever the fault plans tore mid-write must be
    // salvaged or quarantined — never silently kept.
    let store = session.store().expect("soak session has a store");
    let notes = match store.repair() {
        Ok(n) => n,
        Err(e) => bad(&format!("store repair failed: {e}")),
    };
    for n in &notes {
        println!("repair: {n}");
    }
    let findings = fsck(store.root());
    let errors: Vec<_> = findings.iter().filter(|d| d.is_error()).collect();
    let warnings = findings.len() - errors.len();
    println!(
        "fsck: {} error(s), {warnings} warning(s) after repair",
        errors.len()
    );
    for d in &errors {
        eprintln!("  {d}");
    }

    // Zero-fault bit-identity: the supervised fleet must have stored
    // exactly the records a bare, unsupervised diagnose produces.
    let mut divergent = Vec::new();
    if zero_faults {
        let bare = Session::new();
        for (i, (plan, _)) in plans.iter().enumerate() {
            let label = format!("soak-{i:02}");
            let stored = match store.load("synth", &label) {
                Ok(r) => r,
                Err(e) => {
                    divergent.push(format!("{label}: stored record unreadable: {e}"));
                    continue;
                }
            };
            let d = bare
                .diagnose(&workloads[i], &soak_config(plan.clone()), &label)
                .expect("zero-fault config lints clean");
            if write_record(&stored) != write_record(&d.record) {
                divergent.push(format!(
                    "{label}: stored record differs from bare diagnosis"
                ));
            }
        }
        for m in &divergent {
            eprintln!("identity: {m}");
        }
    }

    if !keep {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        println!("kept store at {}", dir.display());
    }

    if check {
        let mut failed = false;
        let mut gate = |name: &str, ok: bool| {
            if ok {
                println!("PASS: {name}");
            } else {
                eprintln!("FAIL: {name}");
                failed = true;
            }
        };
        gate(
            "every session terminated with a classification",
            report.sessions.len() == sessions,
        );
        gate(
            "store is fsck-clean after one repair pass",
            errors.is_empty(),
        );
        if zero_faults {
            gate(
                "zero-fault fleet completed without supervisor intervention",
                report
                    .sessions
                    .iter()
                    .all(|s| s.outcome == SupOutcome::Completed),
            );
            gate(
                "stored records byte-identical to unsupervised diagnoses",
                divergent.is_empty(),
            );
        } else {
            gate(
                "no session abandoned by a supervision-thread panic",
                report.sessions.iter().all(|s| match &s.outcome {
                    SupOutcome::Abandoned { reason } => !reason.contains("panicked"),
                    _ => true,
                }),
            );
        }
        if failed {
            std::process::exit(1);
        }
    }
}
