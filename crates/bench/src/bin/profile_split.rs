//! Dev-only: splits version-D diagnosis wall time into engine, batch
//! drain, collector ingest, and consultant tick components, to aim
//! optimization work. Not part of CI.

use std::time::{Duration, Instant};

use histpc::consultant::{Consultant, HypothesisTree};
use histpc::instr::{Collector, SampleBatch};
use histpc::prelude::*;
use histpc_bench::snapshot;

fn main() {
    let config = SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        max_time: SimDuration::from_secs(900),
        ..SearchConfig::default()
    };
    let wl = PoissonWorkload::new(PoissonVersion::D);
    let mut engine = wl.build_engine();

    let mut t_engine = Duration::ZERO;
    let mut t_drain = Duration::ZERO;
    let mut t_ingest = Duration::ZERO;
    let mut t_tick = Duration::ZERO;
    let whole = Instant::now();

    let mut collector = Collector::new(engine.app().clone(), config.collector.clone());
    let mut consultant = Consultant::new(
        HypothesisTree::standard(),
        config.directives.clone(),
        config.window,
        &collector,
    );
    consultant.tick(SimTime::ZERO, &mut collector);
    collector.apply_perturbation(&mut engine);

    let mut now = SimTime::ZERO;
    let max = SimTime::ZERO + config.max_time;
    loop {
        now += config.sample;
        let t = Instant::now();
        let status = engine.run_until(now);
        t_engine += t.elapsed();
        let t = Instant::now();
        let batch = SampleBatch::drain(&mut engine);
        t_drain += t.elapsed();
        let t = Instant::now();
        collector.ingest(&batch);
        t_ingest += t.elapsed();
        let t = Instant::now();
        consultant.tick(now, &mut collector);
        t_tick += t.elapsed();
        collector.apply_perturbation(&mut engine);
        if consultant.is_quiescent() {
            break;
        }
        if status != EngineStatus::Running {
            break;
        }
        if now >= max {
            break;
        }
    }
    let report = consultant.report(&collector, now);
    let total = whole.elapsed();
    println!(
        "full D: {:.1} ms (end {} us, pairs {}, bottlenecks {})",
        total.as_secs_f64() * 1e3,
        report.end_time.as_micros(),
        report.pairs_tested,
        report.bottlenecks().len()
    );
    println!(
        "  engine {:.1} ms | drain {:.1} ms | ingest {:.1} ms | tick {:.1} ms | other {:.1} ms",
        t_engine.as_secs_f64() * 1e3,
        t_drain.as_secs_f64() * 1e3,
        t_ingest.as_secs_f64() * 1e3,
        t_tick.as_secs_f64() * 1e3,
        (total - t_engine - t_drain - t_ingest - t_tick).as_secs_f64() * 1e3,
    );

    let sim = snapshot::measure_sim_throughput(
        PoissonVersion::D,
        SimDuration::from_micros(report.end_time.as_micros()),
        SimDuration::from_millis(250),
    );
    println!(
        "raw engine to same horizon: {:.1} ms, {} events",
        sim.wall_ms, sim.events
    );
}
