//! Ablation study over the design parameters DESIGN.md calls out:
//! instrumentation insertion delay, the cost-throttle halt threshold, the
//! settled-pair cost factor, and the conclusion window. For each setting
//! the harness runs a base and a directed diagnosis of Poisson 2-D and
//! reports the diagnosis times and the directive speedup — showing which
//! mechanism each part of the paper's effect depends on.

use histpc::history;
use histpc::prelude::*;

struct Row {
    label: String,
    base: Option<SimTime>,
    directed: Option<SimTime>,
    pairs_base: usize,
    pairs_directed: usize,
}

fn run_pair(config: &SearchConfig) -> Row {
    let wl = PoissonWorkload::new(PoissonVersion::C);
    let session = Session::new();
    let base = session.diagnose(&wl, config, "base").unwrap();
    let truth: Vec<(String, Focus)> = base
        .report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect();
    let directives = history::extract(
        &base.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    let directed = session
        .diagnose(&wl, &config.clone().with_directives(directives), "directed")
        .unwrap();
    Row {
        label: String::new(),
        base: base.report.time_to_find(&truth, 1.0),
        directed: directed.report.time_to_find(&truth, 1.0),
        pairs_base: base.report.pairs_tested,
        pairs_directed: directed.report.pairs_tested,
    }
}

fn fmt(t: Option<SimTime>) -> String {
    t.map(|t| format!("{:.1}", t.as_secs_f64()))
        .unwrap_or_else(|| "-".into())
}

fn print_rows(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "setting", "base (s)", "dir. (s)", "reduction", "pairs", "pairs'"
    );
    for r in rows {
        let red = match (r.base, r.directed) {
            (Some(b), Some(d)) if b.as_micros() > 0 => {
                format!("{:.1}%", 100.0 * (1.0 - d.as_secs_f64() / b.as_secs_f64()))
            }
            _ => "-".into(),
        };
        println!(
            "{:<28} {:>10} {:>10} {:>12} {:>8} {:>8}",
            r.label,
            fmt(r.base),
            fmt(r.directed),
            red,
            r.pairs_base,
            r.pairs_directed
        );
    }
}

fn base_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_secs(2),
        sample: SimDuration::from_millis(250),
        max_time: SimDuration::from_secs(900),
        ..SearchConfig::default()
    }
}

fn main() {
    let t0 = std::time::Instant::now();

    // 1. Insertion delay: how much of the diagnosis time is the physical
    //    latency of placing instrumentation?
    let mut rows = Vec::new();
    for ms in [0u64, 80, 400] {
        let mut config = base_config();
        config.collector.insertion_delay = SimDuration::from_millis(ms);
        let mut row = run_pair(&config);
        row.label = format!("insertion_delay = {ms} ms");
        rows.push(row);
    }
    print_rows("Ablation: instrumentation insertion delay", &rows);

    // 2. Cost halt threshold: the budget that serializes the base search.
    let mut rows = Vec::new();
    for halt in [0.025, 0.05, 0.10, 0.20] {
        let mut config = base_config();
        config.collector.cost.halt_threshold = halt;
        config.collector.cost.resume_threshold = halt * 0.7;
        let mut row = run_pair(&config);
        row.label = format!("halt_threshold = {halt}");
        rows.push(row);
    }
    print_rows("Ablation: cost halt threshold", &rows);

    // 3. Settled-pair cost: what persistent High-priority pairs cost to
    //    keep. At 1.0 (no settling) priority-directed searches starve.
    let mut rows = Vec::new();
    for settle in [0.01, 0.25, 1.0] {
        let mut config = base_config();
        config.collector.cost.settle_factor = settle;
        let mut row = run_pair(&config);
        row.label = format!("settle_factor = {settle}");
        rows.push(row);
    }
    print_rows("Ablation: settled-pair cost factor", &rows);

    // 4. Conclusion window: trades diagnosis latency against stability.
    let mut rows = Vec::new();
    for secs in [1u64, 2, 5] {
        let mut config = base_config();
        config.window = SimDuration::from_secs(secs);
        let mut row = run_pair(&config);
        row.label = format!("window = {secs} s");
        rows.push(row);
    }
    print_rows("Ablation: conclusion window", &rows);

    eprintln!("\n(generated in {:?})", t0.elapsed());
}
