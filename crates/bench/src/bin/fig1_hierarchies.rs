//! Regenerates the paper's Figure 1 (Tester resource hierarchies).
fn main() {
    println!("{}", histpc_bench::fig1_hierarchies());
}
