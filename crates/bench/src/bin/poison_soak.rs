//! Poison soak: runs the Poisson versions A–D with adversarially
//! poisoned historical guidance (25% of the harvested directives lie)
//! and the shadow-audit loop armed, and checks that the trust machinery
//! holds every acceptance gate — no true bottleneck lost, at least half
//! the clean-history speedup kept, every revocation traced to the
//! poisoned source run and pinned in the trust ledger, bit-identity at
//! zero poison, and clean recovery from a garbled `TRUST` sidecar.
//!
//! ```text
//! poison_soak [--kind KIND] [--assert]
//! ```
//!
//! `--kind` picks one poison kind for the nightly matrix
//! (`poison-prune`, `poison-threshold`, `stale-mapping`,
//! `trust-ledger-corrupt`) or `all` (the default and the PR gate: every
//! kind at once). With `--assert` the process exits non-zero unless
//! every gate holds.

use histpc_bench::{run_poison_soak, PoisonKind};

fn bad(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: poison_soak [--kind KIND] [--assert]");
    eprintln!("kinds: poison-prune, poison-threshold, stale-mapping, trust-ledger-corrupt, all");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kind = PoisonKind::All;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--kind" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --kind");
                };
                match PoisonKind::parse(value) {
                    Some(k) => kind = k,
                    None => bad(&format!("unknown poison kind {value:?}")),
                }
                i += 2;
            }
            "--assert" => {
                check = true;
                i += 1;
            }
            other => bad(&format!("unknown flag {other:?}")),
        }
    }

    let soak = run_poison_soak(kind);
    print!("{}", soak.render());
    if check {
        let mut failed = false;
        let mut gate = |name: &str, ok: bool| {
            if ok {
                println!("PASS: {name}");
            } else {
                eprintln!("FAIL: {name}");
                failed = true;
            }
        };
        if !soak.results.is_empty() {
            gate(
                "every baseline bottleneck survives the poisoned history",
                soak.complete(),
            );
            gate(
                "at least half the clean-history saving is retained",
                soak.retained(),
            );
            gate(
                "every revocation names the poisoned source and is pinned",
                soak.provenance_held(),
            );
            gate("the shadow-audit loop engaged", soak.audits_engaged());
        }
        if let Some(ok) = soak.zero_identical {
            gate("zero poison + audit budget 0 is bit-identical", ok);
        }
        if let Some(ok) = soak.ledger_recovered {
            gate("a garbled TRUST sidecar recovers to full trust", ok);
        }
        if failed {
            std::process::exit(1);
        }
    }
}
