//! Regenerates the paper's Table 4 (similarity of extracted priorities).
fn main() {
    let t0 = std::time::Instant::now();
    let table = histpc_bench::run_table4();
    println!("{}", table.render());
    eprintln!("(generated in {:?})", t0.elapsed());
}
