//! Overload soak: re-runs the version-D diagnosis under a sample flood
//! and request storms with admission control enabled, and checks that it
//! degrades *gracefully* — same whole-program bottlenecks as the
//! unloaded baseline, in-flight instrumentation within the configured
//! bound, starved processes concluding `Saturated` rather than `False`,
//! and no directives harvested from under a saturated resource.
//!
//! ```text
//! overload_soak [--flood FACTOR] [--assert]
//! ```
//!
//! `--flood 5` (the default) runs the acceptance scenario: 5× sample
//! pressure. With `--assert` the process exits non-zero unless every
//! graceful-degradation gate holds — the CI gate that overload bends the
//! diagnosis instead of breaking it.

use histpc_bench::run_overload_soak;

fn bad(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: overload_soak [--flood FACTOR] [--assert]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut flood = 5.0;
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--flood" => {
                let Some(value) = args.get(i + 1) else {
                    bad("missing value for --flood");
                };
                match value.parse::<f64>() {
                    Ok(v) if v >= 1.0 => flood = v,
                    _ => bad("--flood wants a pressure factor >= 1"),
                }
                i += 2;
            }
            "--assert" => {
                check = true;
                i += 1;
            }
            other => bad(&format!("unknown flag {other:?}")),
        }
    }

    let soak = run_overload_soak(flood);
    print!("{}", soak.render());
    if check {
        let mut failed = false;
        let mut gate = |name: &str, ok: bool| {
            if ok {
                println!("PASS: {name}");
            } else {
                eprintln!("FAIL: {name}");
                failed = true;
            }
        };
        gate(
            "loaded run converges on the unloaded top-level bottlenecks",
            soak.converged(),
        );
        gate(
            "in-flight occupancy stayed within the bound",
            soak.admission.peak_in_flight <= soak.max_in_flight,
        );
        gate(
            "sample pressure engaged the admission layer",
            soak.stats.flooded > 0 && soak.admission.shed_samples > 0,
        );
        gate(
            "at least one process saturated into a Saturated verdict",
            soak.admission.breaker_opens > 0 && soak.saturated_pairs > 0,
        );
        gate(
            "no directive harvested from under a saturated resource",
            soak.leaked_directives == 0,
        );
        if failed {
            std::process::exit(1);
        }
    }
}
