//! Regenerates the paper's Table 2 (threshold sweep), including the
//! secondary PVM ocean-circulation study mentioned in §4.2.
fn main() {
    let t0 = std::time::Instant::now();
    let mpi = histpc_bench::run_table2();
    println!("{}", mpi.render());
    println!(
        "Best (most efficient) synchronization threshold: {:.0}%\n",
        mpi.best_threshold() * 100.0
    );
    let pvm = histpc_bench::run_table2_ocean();
    println!("{}", pvm.render());
    println!(
        "Best (most efficient) synchronization threshold: {:.0}%",
        pvm.best_threshold() * 100.0
    );
    eprintln!("(generated in {:?})", t0.elapsed());
}
