//! Per-PR bench snapshot harness: measures diagnosis wall-time for the
//! Poisson versions A–D, the overload-soak and degraded scenarios, the
//! supervised-vs-bare and daemon-vs-in-process overheads, and raw
//! simulator event throughput, and writes `BENCH_<pr>.json` in the
//! stable `histpc-bench-snapshot/v1` schema.
//!
//! ```text
//! bench_snapshot [--out PATH] [--pr N] [--before PATH] [--quick]
//! bench_snapshot --check PATH [--quick]
//! ```
//!
//! Without `--check`, runs the measurement profile and writes a snapshot
//! to `--out` (default `BENCH_<pr>.json`); `--before FILE` embeds the
//! "after" phase of a previously written snapshot as this snapshot's
//! "before" phase, so a PR can record its own before/after speedup.
//!
//! With `--check FILE`, re-runs the measurement profile and fails
//! (exit 1) if any *non-timing* invariant — convergence, verdict
//! counts, shed/saturation counters, event counts — differs from the
//! committed snapshot's "after" phase. Wall-clock fields are never
//! compared. This is the CI gate that a perf PR cannot silently change
//! behaviour.

use histpc_bench::snapshot::{self, Snapshot};

fn bad(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: bench_snapshot [--out PATH] [--pr N] [--before PATH] [--check PATH] [--quick]"
    );
    std::process::exit(2);
}

fn read_snapshot(path: &str) -> Snapshot {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => bad(&format!("cannot read {path}: {e}")),
    };
    match Snapshot::parse(&text) {
        Ok(s) => s,
        Err(e) => bad(&format!("cannot parse {path}: {e}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut pr: u64 = 10;
    let mut before_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut quick = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                quick = true;
                i += 1;
            }
            flag @ ("--out" | "--pr" | "--before" | "--check") => {
                let Some(value) = args.get(i + 1) else {
                    bad(&format!("missing value for {flag}"));
                };
                match flag {
                    "--out" => out = Some(value.clone()),
                    "--pr" => match value.parse::<u64>() {
                        Ok(v) => pr = v,
                        Err(_) => bad("--pr wants a number"),
                    },
                    "--before" => before_path = Some(value.clone()),
                    "--check" => check_path = Some(value.clone()),
                    _ => unreachable!(),
                }
                i += 2;
            }
            other => bad(&format!("unknown flag {other:?}")),
        }
    }

    let profile = if quick { "quick" } else { "full" };
    eprintln!("bench_snapshot: running {profile} measurement profile...");
    let measured = if quick {
        snapshot::measure_quick()
    } else {
        snapshot::measure_full()
    };

    if let Some(path) = check_path {
        let committed = read_snapshot(&path);
        let regressions = snapshot::invariant_regressions(&committed.after, &measured);
        if regressions.is_empty() {
            println!("PASS: all non-timing invariants match {path}");
            return;
        }
        for r in &regressions {
            eprintln!("FAIL: {r}");
        }
        eprintln!(
            "{} non-timing invariant(s) regressed vs {path}",
            regressions.len()
        );
        std::process::exit(1);
    }

    let before = before_path.map(|p| read_snapshot(&p).after);
    let snap = Snapshot {
        schema: snapshot::SCHEMA.into(),
        pr,
        before,
        after: measured,
    };

    for d in &snap.after.diagnosis {
        let speedup = snap
            .speedup(&d.version)
            .map(|s| format!("  ({s:.2}x vs before)"))
            .unwrap_or_default();
        println!(
            "diagnosis {:>5}: {:>9.1} ms  pairs={:<4} bottlenecks={:<3} quiescent={}{}",
            d.version, d.wall_ms, d.pairs_tested, d.bottlenecks, d.quiescent, speedup
        );
    }
    if let Some(o) = &snap.after.overload {
        println!(
            "overload  soak : {:>9.1} ms  converged={} graceful={}",
            o.wall_ms, o.converged, o.degraded_gracefully
        );
    }
    if let Some(d) = &snap.after.degraded {
        println!(
            "degraded  run  : {:>9.1} ms  reduction={:?} unknown={}",
            d.wall_ms, d.reduction, d.unknown_pairs
        );
    }
    if let Some(c) = &snap.after.corpus {
        println!(
            "corpus    lint : {:>9.1} ms cold / {:>7.1} ms incremental  \
             records={} findings={} relowered={}",
            c.cold_wall_ms, c.incremental_wall_ms, c.records, c.findings, c.incremental_lowered
        );
    }
    if let Some(s) = &snap.after.supervised {
        let overhead = s
            .overhead()
            .map(|o| format!("{:+.1}%", o * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "supervised run : {:>9.1} ms  bare={:.1} ms  overhead={}  identical={}",
            s.supervised_wall_ms, s.bare_wall_ms, overhead, s.identical
        );
    }
    if let Some(d) = &snap.after.daemon {
        let overhead = d
            .overhead()
            .map(|o| format!("{:+.1}%", o * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "daemon     run : {:>9.1} ms  in-process={:.1} ms  overhead={}  identical={}",
            d.daemon_wall_ms, d.inprocess_wall_ms, overhead, d.identical
        );
    }
    if let Some(p) = &snap.after.poison {
        let retention = p
            .retention()
            .map(|r| format!("{:.0}%", r * 100.0))
            .unwrap_or_else(|| "n/a".into());
        println!(
            "poisoned   run : {:>9.1} ms  injected={} audits={} revocations={} \
             mislabeled={} retention={}",
            p.wall_ms, p.injected, p.audits, p.revocations, p.mislabeled, retention
        );
    }
    println!(
        "sim throughput : {:>9.1} ms  {} events  ({:.0} events/s)",
        snap.after.sim.wall_ms, snap.after.sim.events, snap.after.sim.events_per_sec
    );

    let path = out.unwrap_or_else(|| format!("BENCH_{pr}.json"));
    if let Err(e) = std::fs::write(&path, snap.to_json()) {
        bad(&format!("cannot write {path}: {e}"));
    }
    println!("wrote {path}");
}
