//! Regenerates the paper's Figure 3 (execution map + mapping directives).
fn main() {
    println!("{}", histpc_bench::fig3_mappings());
}
