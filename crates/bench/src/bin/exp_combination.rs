//! Regenerates the paper's §4.3 text experiments (a1 vs a2; A∩B vs A∪B).
fn main() {
    let t0 = std::time::Instant::now();
    println!("{}", histpc_bench::run_combination().render());
    eprintln!("(generated in {:?})", t0.elapsed());
}
