//! `histpc-bench`: the harness regenerating every table and figure of the
//! paper's evaluation (§4).
//!
//! One binary per artifact (see `src/bin/`); shared experiment code lives
//! in [`experiments`]. Absolute times differ from the paper (our substrate
//! is a simulator, not a dedicated IBM SP/2 partition), but each binary
//! prints the same rows the paper reports, and EXPERIMENTS.md records the
//! paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod poison;
pub mod snapshot;

pub use experiments::*;
pub use poison::{run_poison_soak, run_poison_version, PoisonKind, PoisonSoak};
