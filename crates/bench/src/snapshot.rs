//! Per-PR bench snapshot (`BENCH_<pr>.json`).
//!
//! The repo carries a measured perf trajectory: each PR that touches the
//! hot path lands a `BENCH_<pr>.json` produced by the `bench_snapshot`
//! binary, holding diagnosis wall-times for the Poisson versions A–D,
//! the overload-soak, degraded-run, corpus-analysis, supervised-
//! vs-bare and daemon-vs-in-process scenarios, and raw simulator event
//! throughput — once as measured on the parent commit ("before") and
//! once on the PR itself ("after").
//!
//! Every field except the wall-clock timings is a deterministic function
//! of (workload, config, seed); those *non-timing invariants* are what
//! CI re-checks against the committed snapshot, so a behaviour change
//! can never hide inside a perf PR.
//!
//! The workspace is serde-free, so the schema is a small hand-rolled
//! JSON document model ([`Json`]) with a writer and parser that
//! round-trip exactly.

use crate::{base_diagnosis, run_degraded, run_overload_soak};
use histpc::prelude::*;
use std::time::Instant;

/// Schema identifier written into every snapshot file.
pub const SCHEMA: &str = "histpc-bench-snapshot/v1";

/// The seven outcome names, in the order verdict counts are recorded.
const OUTCOME_NAMES: [&str; 7] = [
    "true",
    "false",
    "pruned",
    "untested",
    "unknown",
    "unreachable",
    "saturated",
];

// ---------------------------------------------------------------------
// Schema types
// ---------------------------------------------------------------------

/// Timing and invariants of one full diagnosis run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisMeasurement {
    /// Scenario label (the Poisson version letter, or a synthetic label).
    pub version: String,
    /// Host wall-clock time of the diagnosis in milliseconds (timing).
    pub wall_ms: f64,
    /// Whether the search quiesced.
    pub quiescent: bool,
    /// Hypothesis/focus pairs instrumented.
    pub pairs_tested: u64,
    /// Application time when the search ended, in microseconds.
    pub end_time_us: u64,
    /// Number of true (bottleneck) verdicts.
    pub bottlenecks: u64,
    /// Verdict counts, one per [`Outcome`] name in stable order.
    pub verdicts: Vec<(String, u64)>,
    /// Application time of the last bottleneck report, in microseconds.
    pub last_bottleneck_us: Option<u64>,
}

/// Timing and invariants of the overload-soak scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadMeasurement {
    /// Host wall-clock time of the whole soak in milliseconds (timing).
    pub wall_ms: f64,
    /// Loaded run converged on the unloaded whole-program bottlenecks.
    pub converged: bool,
    /// Admission engaged and held every graceful-degradation guarantee.
    pub degraded_gracefully: bool,
    /// Samples shed by the admission layer.
    pub shed_samples: u64,
    /// Instrumentation requests shed by the admission layer.
    pub shed_requests: u64,
    /// Circuit-breaker trips.
    pub breaker_opens: u64,
    /// Pairs concluded `Saturated`.
    pub saturated_pairs: u64,
    /// Directives harvested from the loaded record.
    pub directives: u64,
    /// Directives leaked from under a saturated resource (must be 0).
    pub leaked_directives: u64,
    /// Peak in-flight instrumentation observed.
    pub peak_in_flight: u64,
}

/// Timing and invariants of the degraded-run scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedMeasurement {
    /// Host wall-clock time of the whole experiment in ms (timing).
    pub wall_ms: f64,
    /// Directed-run speedup over the faulted base run, if both finished.
    pub reduction: Option<f64>,
    /// Pairs the base run left at the `Unknown` verdict.
    pub unknown_pairs: u64,
    /// Resources the base run marked unreachable.
    pub unreachable: u64,
    /// Directives harvested from the degraded record.
    pub directives: u64,
}

/// Timing and invariants of the corpus-analysis scenario: a synthetic
/// multi-run store analyzed cold (no fact cache) and again after
/// touching exactly one record (incremental).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusMeasurement {
    /// Host wall-clock time of the cold analysis in ms (timing).
    pub cold_wall_ms: f64,
    /// Host wall-clock time of the incremental re-analysis in ms (timing).
    pub incremental_wall_ms: f64,
    /// Records in the synthetic store (deterministic).
    pub records: u64,
    /// Findings the analysis reports (deterministic).
    pub findings: u64,
    /// Records lowered from scratch by the cold analysis (deterministic;
    /// equals `records`).
    pub cold_lowered: u64,
    /// Records re-lowered by the incremental analysis (deterministic;
    /// the touched record and nothing else).
    pub incremental_lowered: u64,
}

/// Timing and invariants of the supervised-vs-bare scenario: one
/// zero-fault diagnosis run twice — once directly through
/// `Session::diagnose` and once under a `Supervisor` with the watchdog
/// armed — so the snapshot tracks the supervision overhead on the
/// healthy path (the acceptance bound is ≤5%).
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedMeasurement {
    /// Host wall-clock time of the bare diagnosis in ms (timing).
    pub bare_wall_ms: f64,
    /// Host wall-clock time of the supervised diagnosis in ms (timing).
    pub supervised_wall_ms: f64,
    /// Sessions driven by the supervisor (deterministic).
    pub sessions: u64,
    /// Sessions classified `Completed` (deterministic; must equal
    /// `sessions` on the zero-fault path).
    pub completed: u64,
    /// Supervised record byte-identical to the bare one (deterministic).
    pub identical: bool,
}

impl SupervisedMeasurement {
    /// Supervision overhead as a fraction of the bare wall time
    /// (timing-derived; e.g. `0.03` = 3% slower under supervision).
    pub fn overhead(&self) -> Option<f64> {
        (self.bare_wall_ms > 0.0).then(|| self.supervised_wall_ms / self.bare_wall_ms - 1.0)
    }
}

/// Timing and invariants of the daemon-vs-in-process scenario: the
/// same zero-fault sessions run once through a live [`histpc_daemon`]
/// instance over its Unix socket (start/attach/report round trips
/// included) and once directly via `Session::diagnose`, so the
/// snapshot tracks the full service-stack overhead and holds the wire
/// to bit-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonMeasurement {
    /// Host wall-clock time of the daemon-served sessions in ms (timing).
    pub daemon_wall_ms: f64,
    /// Host wall-clock time of the in-process sessions in ms (timing).
    pub inprocess_wall_ms: f64,
    /// Sessions run through each leg (deterministic).
    pub sessions: u64,
    /// Daemon sessions classified `completed` (deterministic; must
    /// equal `sessions` on the zero-fault path).
    pub completed: u64,
    /// Every daemon report body byte-identical to the in-process
    /// record (deterministic).
    pub identical: bool,
}

impl DaemonMeasurement {
    /// Service overhead as a fraction of the in-process wall time
    /// (timing-derived; e.g. `0.10` = 10% slower through the daemon).
    pub fn overhead(&self) -> Option<f64> {
        (self.inprocess_wall_ms > 0.0).then(|| self.daemon_wall_ms / self.inprocess_wall_ms - 1.0)
    }
}

/// Timing and invariants of the poisoned-vs-clean scenario: Poisson
/// version D diagnosed three ways — unguided, steered by clean
/// harvested history, and steered by the same history with every
/// poison kind applied at the acceptance rate and the shadow-audit
/// loop armed — so the snapshot tracks what trusting history costs
/// when the history lies.
#[derive(Debug, Clone, PartialEq)]
pub struct PoisonMeasurement {
    /// Host wall-clock time of the whole scenario in ms (timing).
    pub wall_ms: f64,
    /// Every bottleneck the unguided run finds survived the poisoned
    /// history (deterministic; must stay true).
    pub complete: bool,
    /// Adversarial directive edits injected (deterministic).
    pub injected: u64,
    /// Audit outcomes the poisoned run recorded (deterministic).
    pub audits: u64,
    /// Audits that convicted and revoked their directive (deterministic).
    pub revocations: u64,
    /// Revocations naming anything but the poisoned source
    /// (deterministic; must stay 0).
    pub mislabeled: u64,
    /// App time of the last bottleneck in the unguided run, in
    /// microseconds (deterministic).
    pub base_us: Option<u64>,
    /// Same, steered by clean history (deterministic).
    pub clean_us: Option<u64>,
    /// Same, steered by poisoned history with audits armed
    /// (deterministic).
    pub poisoned_us: Option<u64>,
    /// Trust-ledger score of the poisoned source after the run
    /// (deterministic).
    pub score: u64,
}

impl PoisonMeasurement {
    /// Fraction of the clean-history saving the poisoned run kept
    /// (deterministic-derived; the acceptance floor is 0.5).
    pub fn retention(&self) -> Option<f64> {
        let (base, clean, poisoned) = (self.base_us?, self.clean_us?, self.poisoned_us?);
        let clean_saving = base.saturating_sub(clean);
        (clean_saving > 0).then(|| base.saturating_sub(poisoned) as f64 / clean_saving as f64)
    }
}

/// Raw simulator event throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMeasurement {
    /// Host wall-clock time of the raw run in milliseconds (timing).
    pub wall_ms: f64,
    /// Intervals drained from the engine (deterministic).
    pub events: u64,
    /// Simulated time covered, in microseconds (deterministic).
    pub sim_us: u64,
    /// Events per host wall-clock second (timing, derived).
    pub events_per_sec: f64,
}

/// One measured phase: the "before" or "after" half of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseMeasurements {
    /// Full-diagnosis scenarios (versions A–D for the canonical profile).
    pub diagnosis: Vec<DiagnosisMeasurement>,
    /// Overload soak (absent in quick profiles).
    pub overload: Option<OverloadMeasurement>,
    /// Degraded run (absent in quick profiles).
    pub degraded: Option<DegradedMeasurement>,
    /// Corpus analysis over a synthetic store (absent in snapshots
    /// predating PR 7).
    pub corpus: Option<CorpusMeasurement>,
    /// Supervised-vs-bare overhead (absent in snapshots predating PR 8).
    pub supervised: Option<SupervisedMeasurement>,
    /// Daemon-vs-in-process overhead (absent in snapshots predating
    /// PR 9).
    pub daemon: Option<DaemonMeasurement>,
    /// Poisoned-vs-clean history (absent in snapshots predating PR 10).
    pub poison: Option<PoisonMeasurement>,
    /// Raw simulator throughput.
    pub sim: SimMeasurement,
}

/// A complete `BENCH_<pr>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// PR number the snapshot belongs to.
    pub pr: u64,
    /// Measurements taken on the parent commit, when recorded.
    pub before: Option<PhaseMeasurements>,
    /// Measurements taken on the PR itself.
    pub after: PhaseMeasurements,
}

impl Snapshot {
    /// Wall-time speedup of `version` between the before and after
    /// phases (before / after), if both were recorded.
    pub fn speedup(&self, version: &str) -> Option<f64> {
        let before = self.before.as_ref()?;
        let b = before.diagnosis.iter().find(|d| d.version == version)?;
        let a = self.after.diagnosis.iter().find(|d| d.version == version)?;
        if a.wall_ms > 0.0 {
            Some(b.wall_ms / a.wall_ms)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn diag_measurement(version: &str, d: &Diagnosis, wall_ms: f64) -> DiagnosisMeasurement {
    let verdicts = OUTCOME_NAMES
        .iter()
        .map(|name| {
            let n = d
                .report
                .outcomes
                .iter()
                .filter(|o| o.outcome.name() == *name)
                .count() as u64;
            (name.to_string(), n)
        })
        .collect();
    DiagnosisMeasurement {
        version: version.to_string(),
        wall_ms,
        quiescent: d.report.quiescent,
        pairs_tested: d.report.pairs_tested as u64,
        end_time_us: d.report.end_time.as_micros(),
        bottlenecks: d.report.bottleneck_count() as u64,
        verdicts,
        last_bottleneck_us: d.report.time_of_last_bottleneck().map(SimTime::as_micros),
    }
}

/// Times one canonical (paper-configuration) diagnosis of a Poisson
/// version and extracts its invariants.
pub fn measure_poisson(version: PoissonVersion) -> DiagnosisMeasurement {
    let t = Instant::now();
    let d = base_diagnosis(version);
    let wall = ms(t);
    diag_measurement(version.label(), &d, wall)
}

/// A small synthetic diagnosis for fast (debug-build) test profiles.
pub fn measure_quick_diagnosis() -> DiagnosisMeasurement {
    let wl = SyntheticWorkload::balanced(2, 3, 0.05).with_hotspot(0, 1, 3.0);
    let config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    };
    let t = Instant::now();
    let d = Session::new()
        .diagnose(&wl, &config, "quick")
        .expect("default config lints clean");
    let wall = ms(t);
    diag_measurement("quick", &d, wall)
}

/// Times the overload-soak scenario at the canonical 5× flood.
pub fn measure_overload() -> OverloadMeasurement {
    let t = Instant::now();
    let soak = run_overload_soak(5.0);
    OverloadMeasurement {
        wall_ms: ms(t),
        converged: soak.converged(),
        degraded_gracefully: soak.degraded_gracefully(),
        shed_samples: soak.admission.shed_samples,
        shed_requests: soak.admission.shed_requests,
        breaker_opens: soak.admission.breaker_opens,
        saturated_pairs: soak.saturated_pairs as u64,
        directives: soak.directive_count as u64,
        leaked_directives: soak.leaked_directives as u64,
        peak_in_flight: soak.admission.peak_in_flight as u64,
    }
}

/// Times the degraded-run scenario (10% loss, one node killed at 5 s).
pub fn measure_degraded() -> DegradedMeasurement {
    let t = Instant::now();
    let exp = run_degraded(0.10, Some(SimTime::from_secs(5)));
    DegradedMeasurement {
        wall_ms: ms(t),
        reduction: exp.reduction(),
        unknown_pairs: exp.unknown_pairs as u64,
        unreachable: exp.unreachable.len() as u64,
        directives: exp.directive_count as u64,
    }
}

/// Builds a synthetic `records`-run store seeded with the corpus-lint
/// fixture classes, then times `histpc lint corpus` over it: once cold
/// (empty fact cache) and once after re-saving a single record, so the
/// snapshot tracks both full-lowering throughput and the incremental
/// win the fact cache buys.
pub fn measure_corpus(records: usize) -> CorpusMeasurement {
    use histpc::consultant::NodeOutcome;
    use histpc::history::{ExecutionRecord, ExecutionStore};
    use histpc::lint::CorpusAnalyzer;

    let n = |s: &str| ResourceName::parse(s).expect("static name");
    let outcome = |hyp: &str, sel: Option<&str>, oc: Outcome, value: f64| {
        let mut focus = Focus::whole_program(["Code", "Machine", "Process", "SyncObject"]);
        if let Some(s) = sel {
            focus = focus.with_selection(n(s));
        }
        NodeOutcome {
            hypothesis: hyp.into(),
            focus,
            outcome: oc,
            first_true_at: (oc == Outcome::True).then_some(SimTime(1)),
            concluded_at: Some(SimTime(1)),
            last_value: value,
            samples: 5,
        }
    };
    let rec = |app: &str, label: &str, extra: &[&str], outcomes: Vec<NodeOutcome>| {
        let mut resources = vec![
            n("/Code"),
            n("/Code/a.c"),
            n("/Code/a.c/f"),
            n("/Code/a.c/g"),
            n("/Machine"),
            n("/Machine/n1"),
            n("/Process"),
            n("/Process/p1"),
            n("/SyncObject"),
        ];
        resources.extend(extra.iter().map(|s| n(s)));
        ExecutionRecord {
            app_name: app.into(),
            app_version: "A".into(),
            label: label.into(),
            resources,
            outcomes,
            thresholds_used: vec![],
            end_time: SimTime(10),
            pairs_tested: 1,
            unreachable: vec![],
            saturated: vec![],
        }
    };

    let dir = std::env::temp_dir().join(format!(
        "histpc-bench-corpus-{records}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ExecutionStore::open(&dir).expect("temp store opens");

    // The bulk of the store: uniform runs of one app, the oldest of
    // which names a resource every later run lacks (the HL031 fixture,
    // under the default window). Six fixture records (conflict, drift,
    // dominance) ride on top.
    let bulk = records.saturating_sub(6).max(1);
    for i in 0..bulk {
        let label = format!("run-{i:05}");
        let r = if i == 0 {
            rec(
                "bulk",
                &label,
                &["/Code/old.c", "/Code/old.c/h"],
                vec![outcome(
                    "CPUbound",
                    Some("/Code/old.c/h"),
                    Outcome::True,
                    0.4,
                )],
            )
        } else {
            rec(
                "bulk",
                &label,
                &[],
                vec![outcome("CPUbound", None, Outcome::True, 0.4)],
            )
        };
        store.save(&r).expect("seed record saves");
    }
    for (app, label, sel, oc, value) in [
        ("confl", "c1", Some("/Code/a.c/f"), Outcome::False, 0.001),
        ("confl", "c2", Some("/Code/a.c/f"), Outcome::True, 0.4),
        ("drift", "d1", None, Outcome::True, 0.5),
        ("drift", "d2", None, Outcome::True, 0.1),
        ("dom", "g1", Some("/Code/a.c/g"), Outcome::False, 0.05),
        ("dom", "g2", Some("/Code/a.c/g"), Outcome::False, 0.001),
    ] {
        let hyp = if app == "drift" {
            "ExcessiveSyncWaitingTime"
        } else {
            "CPUbound"
        };
        store
            .save(&rec(app, label, &[], vec![outcome(hyp, sel, oc, value)]))
            .expect("fixture saves");
    }

    let t = Instant::now();
    let cold = CorpusAnalyzer::new(&store)
        .analyze()
        .expect("cold analysis");
    let cold_wall_ms = ms(t);

    store
        .save(&rec(
            "bulk",
            "run-00001",
            &[],
            vec![outcome("CPUbound", None, Outcome::True, 0.41)],
        ))
        .expect("touched record saves");
    let t = Instant::now();
    let incr = CorpusAnalyzer::new(&store)
        .analyze()
        .expect("incremental analysis");
    let incremental_wall_ms = ms(t);
    let _ = std::fs::remove_dir_all(&dir);

    CorpusMeasurement {
        cold_wall_ms,
        incremental_wall_ms,
        records: cold.records as u64,
        findings: incr.report.diagnostics.len() as u64,
        cold_lowered: cold.cache_misses as u64,
        incremental_lowered: incr.cache_misses as u64,
    }
}

/// Runs one zero-fault diagnosis twice — bare and supervised, each
/// persisting into its own scratch store — and reports the wall times
/// plus the bit-identity of the two stored records. The supervised leg
/// runs with the wall-clock watchdog armed, so the measured delta is
/// the full supervision overhead (thread scope, watchdog polling,
/// heartbeat/cancel hooks in the drive loop), which the acceptance
/// criteria bound at 5% of the bare time.
fn supervised_vs_bare(wl: &(dyn Workload + Sync), config: &SearchConfig) -> SupervisedMeasurement {
    use histpc::history::format::write_record;
    use histpc::supervise::SessionDriver;

    let scratch = |leg: &str| {
        let dir =
            std::env::temp_dir().join(format!("histpc-bench-sup-{leg}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    // Interleave the legs and keep the fastest of three runs each: the
    // per-run overhead being measured (thread scope, watchdog, hooks)
    // is small against host scheduling noise, and min-of-N with
    // interleaving cancels load drift a single back-to-back pair
    // would soak up.
    const ROUNDS: usize = 3;
    let mut bare_wall_ms = f64::INFINITY;
    let mut supervised_wall_ms = f64::INFINITY;
    let mut bare_record = String::new();
    let mut supervised_record = String::new();
    let mut sessions = 0u64;
    let mut completed = 0u64;
    for _ in 0..ROUNDS {
        let bare_dir = scratch("bare");
        let bare_session = Session::with_store(&bare_dir).expect("scratch store opens");
        let t = Instant::now();
        let bare = bare_session
            .diagnose(wl, config, "snap")
            .expect("snapshot config lints clean");
        bare_wall_ms = bare_wall_ms.min(ms(t));
        bare_record = write_record(&bare.record);
        let _ = std::fs::remove_dir_all(&bare_dir);

        let sup_dir = scratch("sup");
        let sup_session = Session::with_store(&sup_dir).expect("scratch store opens");
        let driver = WorkloadSession::new(&sup_session, wl, config.clone(), "snap");
        let supervisor = Supervisor::new(SupervisorConfig {
            stall: Some(std::time::Duration::from_secs(30)),
            ..SupervisorConfig::default()
        });
        let t = Instant::now();
        let report = supervisor.run(&[&driver as &dyn SessionDriver]);
        supervised_wall_ms = supervised_wall_ms.min(ms(t));
        sessions = report.sessions.len() as u64;
        completed = report.completed() as u64;
        let app = wl.app_spec().name;
        supervised_record = sup_session
            .store()
            .expect("supervised session has a store")
            .load(&app, "snap")
            .map(|r| write_record(&r))
            .expect("supervised record stored");
        let _ = std::fs::remove_dir_all(&sup_dir);
    }

    SupervisedMeasurement {
        bare_wall_ms,
        supervised_wall_ms,
        sessions,
        completed,
        identical: supervised_record == bare_record,
    }
}

/// The canonical supervised-vs-bare scenario: Poisson version B under
/// the paper configuration.
pub fn measure_supervised() -> SupervisedMeasurement {
    let wl = PoissonWorkload::new(PoissonVersion::B);
    supervised_vs_bare(&wl, &crate::exp_config())
}

/// A small synthetic supervised-vs-bare run for fast test profiles.
pub fn measure_supervised_quick() -> SupervisedMeasurement {
    let wl = SyntheticWorkload::balanced(2, 3, 0.05).with_hotspot(0, 1, 3.0);
    let config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    };
    supervised_vs_bare(&wl, &config)
}

/// Runs `sessions` zero-fault diagnoses of the catalogue `tester` app
/// twice — once through a live daemon over its Unix socket (start,
/// attach, report) and once directly in-process — and reports both
/// wall times plus the bit-identity of every daemon report body
/// against the in-process record.
pub fn measure_daemon(sessions: usize) -> DaemonMeasurement {
    use histpc::history::format::write_record;
    use histpc::remote::{Client, Request};
    use histpc_daemon::{Daemon, DaemonConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Distinct scratch roots even when several measurements run in one
    // process (the test harness does).
    static RUN: AtomicUsize = AtomicUsize::new(0);
    let run = RUN.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("histpc-bench-daemon-{run}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(120),
        stall: Some(SimDuration::from_secs(2)),
        ..SearchConfig::default()
    };

    // Daemon leg: every round trip (handshake, start, bounded attach,
    // report) is part of the measured service overhead.
    let socket = dir.join("d.sock");
    let daemon =
        Daemon::start(DaemonConfig::new(dir.join("store"), &socket)).expect("daemon starts");
    let mut client = Client::new(&socket, "bench");
    let mut completed = 0u64;
    let mut remote: Vec<String> = Vec::with_capacity(sessions);
    let t = Instant::now();
    for i in 0..sessions {
        let label = format!("bench-{i:02}");
        client
            .expect_ok(
                &Request::new("start")
                    .arg("app", "tester")
                    .arg("label", &label)
                    .arg("seed", i as u64),
            )
            .expect("start accepted");
        let done = client
            .expect_ok(
                &Request::new("attach")
                    .arg("label", &label)
                    .arg("wait-ms", 120_000u64),
            )
            .expect("attach returns");
        if done.get("state") == Some("completed") {
            completed += 1;
        }
        let report = client
            .expect_ok(&Request::new("report").arg("label", &label))
            .expect("report returns");
        remote.push(format!("{}\n", report.body().join("\n")));
    }
    let daemon_wall_ms = ms(t);
    client
        .expect_ok(&Request::new("shutdown"))
        .expect("shutdown");
    daemon.join();

    // In-process leg: the same workloads, config and labels, straight
    // through `Session::diagnose` into its own scratch store.
    let local_dir = dir.join("local");
    let session = Session::with_store(&local_dir).expect("scratch store opens");
    let mut local: Vec<String> = Vec::with_capacity(sessions);
    let t = Instant::now();
    for i in 0..sessions {
        let wl = histpc::apps::build_workload("tester", Some(i as u64)).expect("tester app");
        let d = session
            .diagnose(wl.as_ref(), &config, &format!("bench-{i:02}"))
            .expect("zero-fault config lints clean");
        local.push(write_record(&d.record));
    }
    let inprocess_wall_ms = ms(t);
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);

    DaemonMeasurement {
        daemon_wall_ms,
        inprocess_wall_ms,
        sessions: sessions as u64,
        completed,
        identical: remote == local,
    }
}

/// Times the poisoned-vs-clean scenario: version D under the combined
/// poison plan at the acceptance rate, with the shadow-audit loop
/// armed at the soak budget.
pub fn measure_poison() -> PoisonMeasurement {
    let t = Instant::now();
    let r = crate::run_poison_version(PoissonVersion::D, &crate::PoisonKind::All.plan());
    PoisonMeasurement {
        wall_ms: ms(t),
        complete: r.missed.is_empty(),
        injected: r.summary.total() as u64,
        audits: r.audits as u64,
        revocations: r.revocations as u64,
        mislabeled: r.mislabeled_revocations as u64,
        base_us: r.base_us,
        clean_us: r.clean_us,
        poisoned_us: r.poisoned_us,
        score: u64::from(r.score),
    }
}

/// Times a raw (collector-free) engine run of a Poisson version,
/// draining in driver-sized steps, and reports event throughput.
pub fn measure_sim_throughput(
    version: PoissonVersion,
    horizon: SimDuration,
    step: SimDuration,
) -> SimMeasurement {
    let wl = PoissonWorkload::new(version);
    let mut engine = wl.build_engine();
    let max = SimTime::ZERO + horizon;
    let t = Instant::now();
    let mut now = SimTime::ZERO;
    loop {
        now += step;
        let status = engine.run_until(now);
        let _ = engine.drain_intervals();
        if status != EngineStatus::Running || now >= max {
            break;
        }
    }
    let wall = t.elapsed();
    let events = engine.events_drained();
    SimMeasurement {
        wall_ms: wall.as_secs_f64() * 1e3,
        events,
        sim_us: now.as_micros(),
        events_per_sec: if wall.as_secs_f64() > 0.0 {
            events as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
    }
}

/// The canonical (release-mode) measurement profile: versions A–D, the
/// overload soak, the degraded run, and version-D sim throughput.
pub fn measure_full() -> PhaseMeasurements {
    let diagnosis = [
        PoissonVersion::A,
        PoissonVersion::B,
        PoissonVersion::C,
        PoissonVersion::D,
    ]
    .into_iter()
    .map(measure_poisson)
    .collect();
    PhaseMeasurements {
        diagnosis,
        overload: Some(measure_overload()),
        degraded: Some(measure_degraded()),
        corpus: Some(measure_corpus(1000)),
        supervised: Some(measure_supervised()),
        daemon: Some(measure_daemon(4)),
        poison: Some(measure_poison()),
        sim: measure_sim_throughput(
            PoissonVersion::D,
            SimDuration::from_secs(900),
            SimDuration::from_millis(250),
        ),
    }
}

/// A reduced profile cheap enough for debug-build tests: one synthetic
/// diagnosis and a short version-A sim run.
pub fn measure_quick() -> PhaseMeasurements {
    PhaseMeasurements {
        diagnosis: vec![measure_quick_diagnosis()],
        overload: None,
        degraded: None,
        corpus: Some(measure_corpus(60)),
        supervised: Some(measure_supervised_quick()),
        daemon: Some(measure_daemon(2)),
        // The poison scenario needs three full version-D diagnoses —
        // release-profile territory.
        poison: None,
        sim: measure_sim_throughput(
            PoissonVersion::A,
            SimDuration::from_secs(20),
            SimDuration::from_millis(250),
        ),
    }
}

// ---------------------------------------------------------------------
// Invariant comparison
// ---------------------------------------------------------------------

/// Compares every non-timing field of `got` against `want` and returns
/// one message per mismatch (empty = no regression). Timing fields
/// (`wall_ms`, `events_per_sec`) are never compared.
pub fn invariant_regressions(want: &PhaseMeasurements, got: &PhaseMeasurements) -> Vec<String> {
    let mut out = Vec::new();
    fn diff(out: &mut Vec<String>, scenario: &str, field: &str, want: String, got: String) {
        if want != got {
            out.push(format!("{scenario}: {field} was {want}, now {got}"));
        }
    }
    for w in &want.diagnosis {
        let Some(g) = got.diagnosis.iter().find(|d| d.version == w.version) else {
            out.push(format!("diagnosis {}: scenario missing", w.version));
            continue;
        };
        let s = format!("diagnosis {}", w.version);
        diff(
            &mut out,
            &s,
            "quiescent",
            w.quiescent.to_string(),
            g.quiescent.to_string(),
        );
        diff(
            &mut out,
            &s,
            "pairs_tested",
            w.pairs_tested.to_string(),
            g.pairs_tested.to_string(),
        );
        diff(
            &mut out,
            &s,
            "end_time_us",
            w.end_time_us.to_string(),
            g.end_time_us.to_string(),
        );
        diff(
            &mut out,
            &s,
            "bottlenecks",
            w.bottlenecks.to_string(),
            g.bottlenecks.to_string(),
        );
        diff(
            &mut out,
            &s,
            "verdicts",
            format!("{:?}", w.verdicts),
            format!("{:?}", g.verdicts),
        );
        diff(
            &mut out,
            &s,
            "last_bottleneck_us",
            format!("{:?}", w.last_bottleneck_us),
            format!("{:?}", g.last_bottleneck_us),
        );
    }
    match (&want.overload, &got.overload) {
        (None, _) => {}
        (Some(_), None) => out.push("overload: scenario missing".into()),
        (Some(w), Some(g)) => {
            let s = "overload";
            diff(
                &mut out,
                s,
                "converged",
                w.converged.to_string(),
                g.converged.to_string(),
            );
            diff(
                &mut out,
                s,
                "degraded_gracefully",
                w.degraded_gracefully.to_string(),
                g.degraded_gracefully.to_string(),
            );
            diff(
                &mut out,
                s,
                "shed_samples",
                w.shed_samples.to_string(),
                g.shed_samples.to_string(),
            );
            diff(
                &mut out,
                s,
                "shed_requests",
                w.shed_requests.to_string(),
                g.shed_requests.to_string(),
            );
            diff(
                &mut out,
                s,
                "breaker_opens",
                w.breaker_opens.to_string(),
                g.breaker_opens.to_string(),
            );
            diff(
                &mut out,
                s,
                "saturated_pairs",
                w.saturated_pairs.to_string(),
                g.saturated_pairs.to_string(),
            );
            diff(
                &mut out,
                s,
                "directives",
                w.directives.to_string(),
                g.directives.to_string(),
            );
            diff(
                &mut out,
                s,
                "leaked_directives",
                w.leaked_directives.to_string(),
                g.leaked_directives.to_string(),
            );
            diff(
                &mut out,
                s,
                "peak_in_flight",
                w.peak_in_flight.to_string(),
                g.peak_in_flight.to_string(),
            );
        }
    }
    match (&want.degraded, &got.degraded) {
        (None, _) => {}
        (Some(_), None) => out.push("degraded: scenario missing".into()),
        (Some(w), Some(g)) => {
            let s = "degraded";
            diff(
                &mut out,
                s,
                "reduction",
                format!("{:?}", w.reduction),
                format!("{:?}", g.reduction),
            );
            diff(
                &mut out,
                s,
                "unknown_pairs",
                w.unknown_pairs.to_string(),
                g.unknown_pairs.to_string(),
            );
            diff(
                &mut out,
                s,
                "unreachable",
                w.unreachable.to_string(),
                g.unreachable.to_string(),
            );
            diff(
                &mut out,
                s,
                "directives",
                w.directives.to_string(),
                g.directives.to_string(),
            );
        }
    }
    match (&want.corpus, &got.corpus) {
        (None, _) => {}
        (Some(_), None) => out.push("corpus: scenario missing".into()),
        (Some(w), Some(g)) => {
            let s = "corpus";
            diff(
                &mut out,
                s,
                "records",
                w.records.to_string(),
                g.records.to_string(),
            );
            diff(
                &mut out,
                s,
                "findings",
                w.findings.to_string(),
                g.findings.to_string(),
            );
            diff(
                &mut out,
                s,
                "cold_lowered",
                w.cold_lowered.to_string(),
                g.cold_lowered.to_string(),
            );
            diff(
                &mut out,
                s,
                "incremental_lowered",
                w.incremental_lowered.to_string(),
                g.incremental_lowered.to_string(),
            );
        }
    }
    match (&want.supervised, &got.supervised) {
        (None, _) => {}
        (Some(_), None) => out.push("supervised: scenario missing".into()),
        (Some(w), Some(g)) => {
            let s = "supervised";
            diff(
                &mut out,
                s,
                "sessions",
                w.sessions.to_string(),
                g.sessions.to_string(),
            );
            diff(
                &mut out,
                s,
                "completed",
                w.completed.to_string(),
                g.completed.to_string(),
            );
            diff(
                &mut out,
                s,
                "identical",
                w.identical.to_string(),
                g.identical.to_string(),
            );
        }
    }
    match (&want.daemon, &got.daemon) {
        (None, _) => {}
        (Some(_), None) => out.push("daemon: scenario missing".into()),
        (Some(w), Some(g)) => {
            let s = "daemon";
            diff(
                &mut out,
                s,
                "sessions",
                w.sessions.to_string(),
                g.sessions.to_string(),
            );
            diff(
                &mut out,
                s,
                "completed",
                w.completed.to_string(),
                g.completed.to_string(),
            );
            diff(
                &mut out,
                s,
                "identical",
                w.identical.to_string(),
                g.identical.to_string(),
            );
        }
    }
    match (&want.poison, &got.poison) {
        (None, _) => {}
        (Some(_), None) => out.push("poison: scenario missing".into()),
        (Some(w), Some(g)) => {
            let s = "poison";
            diff(
                &mut out,
                s,
                "complete",
                w.complete.to_string(),
                g.complete.to_string(),
            );
            diff(
                &mut out,
                s,
                "injected",
                w.injected.to_string(),
                g.injected.to_string(),
            );
            diff(
                &mut out,
                s,
                "audits",
                w.audits.to_string(),
                g.audits.to_string(),
            );
            diff(
                &mut out,
                s,
                "revocations",
                w.revocations.to_string(),
                g.revocations.to_string(),
            );
            diff(
                &mut out,
                s,
                "mislabeled",
                w.mislabeled.to_string(),
                g.mislabeled.to_string(),
            );
            diff(
                &mut out,
                s,
                "base_us",
                format!("{:?}", w.base_us),
                format!("{:?}", g.base_us),
            );
            diff(
                &mut out,
                s,
                "clean_us",
                format!("{:?}", w.clean_us),
                format!("{:?}", g.clean_us),
            );
            diff(
                &mut out,
                s,
                "poisoned_us",
                format!("{:?}", w.poisoned_us),
                format!("{:?}", g.poisoned_us),
            );
            diff(
                &mut out,
                s,
                "score",
                w.score.to_string(),
                g.score.to_string(),
            );
        }
    }
    diff(
        &mut out,
        "sim",
        "events",
        want.sim.events.to_string(),
        got.sim.events.to_string(),
    );
    diff(
        &mut out,
        "sim",
        "sim_us",
        want.sim.sim_us.to_string(),
        got.sim.sim_us.to_string(),
    );
    out
}

// ---------------------------------------------------------------------
// JSON document model (the workspace is serde-free)
// ---------------------------------------------------------------------

/// A minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (we never need more than f64's 53-bit integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|n| *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as u64)
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    // Rust's Debug for f64 is the shortest round-trip form.
                    out.push_str(&format!("{n:?}"));
                }
            }
            Json::Str(s) => write_json_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, depth + 1);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this module writes).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut p = Parser {
            chars: &bytes,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing garbage at offset {}", p.pos));
        }
        Ok(v)
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {c:?} at offset {}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                '"' => return Ok(s),
                '\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        '"' => s.push('"'),
                        '\\' => s.push('\\'),
                        '/' => s.push('/'),
                        'n' => s.push('\n'),
                        't' => s.push('\t'),
                        'r' => s.push('\r'),
                        'b' => s.push('\u{8}'),
                        'f' => s.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let Some(h) = self.peek().and_then(|c| c.to_digit(16)) else {
                                    return Err("bad \\u escape".into());
                                };
                                self.pos += 1;
                                code = code * 16 + h;
                            }
                            let Some(c) = char::from_u32(code) else {
                                return Err("bad \\u code point".into());
                            };
                            s.push(c);
                        }
                        other => return Err(format!("bad escape \\{other}")),
                    }
                }
                c => s.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' || c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Snapshot <-> JSON
// ---------------------------------------------------------------------

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn opt_num(n: Option<u64>) -> Json {
    n.map_or(Json::Null, num)
}

fn opt_f64(n: Option<f64>) -> Json {
    n.map_or(Json::Null, Json::Num)
}

fn diag_to_json(d: &DiagnosisMeasurement) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::Str(d.version.clone())),
        ("wall_ms".into(), Json::Num(d.wall_ms)),
        ("quiescent".into(), Json::Bool(d.quiescent)),
        ("pairs_tested".into(), num(d.pairs_tested)),
        ("end_time_us".into(), num(d.end_time_us)),
        ("bottlenecks".into(), num(d.bottlenecks)),
        (
            "verdicts".into(),
            Json::Obj(
                d.verdicts
                    .iter()
                    .map(|(k, v)| (k.clone(), num(*v)))
                    .collect(),
            ),
        ),
        ("last_bottleneck_us".into(), opt_num(d.last_bottleneck_us)),
    ])
}

fn phase_to_json(p: &PhaseMeasurements) -> Json {
    let overload = p.overload.as_ref().map_or(Json::Null, |o| {
        Json::Obj(vec![
            ("wall_ms".into(), Json::Num(o.wall_ms)),
            ("converged".into(), Json::Bool(o.converged)),
            (
                "degraded_gracefully".into(),
                Json::Bool(o.degraded_gracefully),
            ),
            ("shed_samples".into(), num(o.shed_samples)),
            ("shed_requests".into(), num(o.shed_requests)),
            ("breaker_opens".into(), num(o.breaker_opens)),
            ("saturated_pairs".into(), num(o.saturated_pairs)),
            ("directives".into(), num(o.directives)),
            ("leaked_directives".into(), num(o.leaked_directives)),
            ("peak_in_flight".into(), num(o.peak_in_flight)),
        ])
    });
    let degraded = p.degraded.as_ref().map_or(Json::Null, |d| {
        Json::Obj(vec![
            ("wall_ms".into(), Json::Num(d.wall_ms)),
            ("reduction".into(), opt_f64(d.reduction)),
            ("unknown_pairs".into(), num(d.unknown_pairs)),
            ("unreachable".into(), num(d.unreachable)),
            ("directives".into(), num(d.directives)),
        ])
    });
    let corpus = p.corpus.as_ref().map_or(Json::Null, |c| {
        Json::Obj(vec![
            ("cold_wall_ms".into(), Json::Num(c.cold_wall_ms)),
            (
                "incremental_wall_ms".into(),
                Json::Num(c.incremental_wall_ms),
            ),
            ("records".into(), num(c.records)),
            ("findings".into(), num(c.findings)),
            ("cold_lowered".into(), num(c.cold_lowered)),
            ("incremental_lowered".into(), num(c.incremental_lowered)),
        ])
    });
    let supervised = p.supervised.as_ref().map_or(Json::Null, |s| {
        Json::Obj(vec![
            ("bare_wall_ms".into(), Json::Num(s.bare_wall_ms)),
            ("supervised_wall_ms".into(), Json::Num(s.supervised_wall_ms)),
            ("sessions".into(), num(s.sessions)),
            ("completed".into(), num(s.completed)),
            ("identical".into(), Json::Bool(s.identical)),
        ])
    });
    let daemon = p.daemon.as_ref().map_or(Json::Null, |d| {
        Json::Obj(vec![
            ("daemon_wall_ms".into(), Json::Num(d.daemon_wall_ms)),
            ("inprocess_wall_ms".into(), Json::Num(d.inprocess_wall_ms)),
            ("sessions".into(), num(d.sessions)),
            ("completed".into(), num(d.completed)),
            ("identical".into(), Json::Bool(d.identical)),
        ])
    });
    let poison = p.poison.as_ref().map_or(Json::Null, |x| {
        Json::Obj(vec![
            ("wall_ms".into(), Json::Num(x.wall_ms)),
            ("complete".into(), Json::Bool(x.complete)),
            ("injected".into(), num(x.injected)),
            ("audits".into(), num(x.audits)),
            ("revocations".into(), num(x.revocations)),
            ("mislabeled".into(), num(x.mislabeled)),
            ("base_us".into(), opt_num(x.base_us)),
            ("clean_us".into(), opt_num(x.clean_us)),
            ("poisoned_us".into(), opt_num(x.poisoned_us)),
            ("score".into(), num(x.score)),
        ])
    });
    Json::Obj(vec![
        (
            "diagnosis".into(),
            Json::Arr(p.diagnosis.iter().map(diag_to_json).collect()),
        ),
        ("overload".into(), overload),
        ("degraded".into(), degraded),
        ("corpus".into(), corpus),
        ("supervised".into(), supervised),
        ("daemon".into(), daemon),
        ("poison".into(), poison),
        (
            "sim".into(),
            Json::Obj(vec![
                ("wall_ms".into(), Json::Num(p.sim.wall_ms)),
                ("events".into(), num(p.sim.events)),
                ("sim_us".into(), num(p.sim.sim_us)),
                ("events_per_sec".into(), Json::Num(p.sim.events_per_sec)),
            ]),
        ),
    ])
}

impl Snapshot {
    /// Serializes to the canonical JSON text.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("schema".into(), Json::Str(self.schema.clone())),
            ("pr".into(), num(self.pr)),
            (
                "before".into(),
                self.before.as_ref().map_or(Json::Null, phase_to_json),
            ),
            ("after".into(), phase_to_json(&self.after)),
        ])
        .render()
    }

    /// Parses the canonical JSON text.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let root = Json::parse(text)?;
        let schema = field_str(&root, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (want {SCHEMA:?})"));
        }
        let before = match root.get("before") {
            None | Some(Json::Null) => None,
            Some(p) => Some(phase_from_json(p)?),
        };
        Ok(Snapshot {
            schema,
            pr: field_u64(&root, "pr")?,
            before,
            after: phase_from_json(
                root.get("after")
                    .ok_or_else(|| "missing 'after'".to_string())?,
            )?,
        })
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(String::from)
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    field(obj, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn field_bool(obj: &Json, key: &str) -> Result<bool, String> {
    field(obj, key)?
        .as_bool()
        .ok_or_else(|| format!("field {key:?} is not a bool"))
}

fn diag_from_json(j: &Json) -> Result<DiagnosisMeasurement, String> {
    let verdicts = match field(j, "verdicts")? {
        Json::Obj(fields) => fields
            .iter()
            .map(|(k, v)| {
                v.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("verdict {k:?} is not a count"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("'verdicts' is not an object".into()),
    };
    let last_bottleneck_us = match field(j, "last_bottleneck_us")? {
        Json::Null => None,
        v => Some(
            v.as_u64()
                .ok_or_else(|| "'last_bottleneck_us' is not an integer".to_string())?,
        ),
    };
    Ok(DiagnosisMeasurement {
        version: field_str(j, "version")?,
        wall_ms: field_f64(j, "wall_ms")?,
        quiescent: field_bool(j, "quiescent")?,
        pairs_tested: field_u64(j, "pairs_tested")?,
        end_time_us: field_u64(j, "end_time_us")?,
        bottlenecks: field_u64(j, "bottlenecks")?,
        verdicts,
        last_bottleneck_us,
    })
}

fn phase_from_json(j: &Json) -> Result<PhaseMeasurements, String> {
    let diagnosis = match field(j, "diagnosis")? {
        Json::Arr(items) => items
            .iter()
            .map(diag_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("'diagnosis' is not an array".into()),
    };
    let overload = match field(j, "overload")? {
        Json::Null => None,
        o => Some(OverloadMeasurement {
            wall_ms: field_f64(o, "wall_ms")?,
            converged: field_bool(o, "converged")?,
            degraded_gracefully: field_bool(o, "degraded_gracefully")?,
            shed_samples: field_u64(o, "shed_samples")?,
            shed_requests: field_u64(o, "shed_requests")?,
            breaker_opens: field_u64(o, "breaker_opens")?,
            saturated_pairs: field_u64(o, "saturated_pairs")?,
            directives: field_u64(o, "directives")?,
            leaked_directives: field_u64(o, "leaked_directives")?,
            peak_in_flight: field_u64(o, "peak_in_flight")?,
        }),
    };
    let degraded = match field(j, "degraded")? {
        Json::Null => None,
        d => Some(DegradedMeasurement {
            wall_ms: field_f64(d, "wall_ms")?,
            reduction: match field(d, "reduction")? {
                Json::Null => None,
                v => Some(
                    v.as_f64()
                        .ok_or_else(|| "'reduction' is not a number".to_string())?,
                ),
            },
            unknown_pairs: field_u64(d, "unknown_pairs")?,
            unreachable: field_u64(d, "unreachable")?,
            directives: field_u64(d, "directives")?,
        }),
    };
    // Absent in snapshots predating PR 7 — parse both missing and null
    // as "not measured".
    let corpus = match j.get("corpus") {
        None | Some(Json::Null) => None,
        Some(c) => Some(CorpusMeasurement {
            cold_wall_ms: field_f64(c, "cold_wall_ms")?,
            incremental_wall_ms: field_f64(c, "incremental_wall_ms")?,
            records: field_u64(c, "records")?,
            findings: field_u64(c, "findings")?,
            cold_lowered: field_u64(c, "cold_lowered")?,
            incremental_lowered: field_u64(c, "incremental_lowered")?,
        }),
    };
    // Absent in snapshots predating PR 8 — parse both missing and null
    // as "not measured".
    let supervised = match j.get("supervised") {
        None | Some(Json::Null) => None,
        Some(s) => Some(SupervisedMeasurement {
            bare_wall_ms: field_f64(s, "bare_wall_ms")?,
            supervised_wall_ms: field_f64(s, "supervised_wall_ms")?,
            sessions: field_u64(s, "sessions")?,
            completed: field_u64(s, "completed")?,
            identical: field_bool(s, "identical")?,
        }),
    };
    // Absent in snapshots predating PR 9 — parse both missing and null
    // as "not measured".
    let daemon = match j.get("daemon") {
        None | Some(Json::Null) => None,
        Some(d) => Some(DaemonMeasurement {
            daemon_wall_ms: field_f64(d, "daemon_wall_ms")?,
            inprocess_wall_ms: field_f64(d, "inprocess_wall_ms")?,
            sessions: field_u64(d, "sessions")?,
            completed: field_u64(d, "completed")?,
            identical: field_bool(d, "identical")?,
        }),
    };
    // Absent in snapshots predating PR 10 — parse both missing and null
    // as "not measured".
    let poison = match j.get("poison") {
        None | Some(Json::Null) => None,
        Some(x) => {
            let opt_us = |key: &str| -> Result<Option<u64>, String> {
                match field(x, key)? {
                    Json::Null => Ok(None),
                    v => v
                        .as_u64()
                        .map(Some)
                        .ok_or_else(|| format!("{key:?} is not an integer")),
                }
            };
            Some(PoisonMeasurement {
                wall_ms: field_f64(x, "wall_ms")?,
                complete: field_bool(x, "complete")?,
                injected: field_u64(x, "injected")?,
                audits: field_u64(x, "audits")?,
                revocations: field_u64(x, "revocations")?,
                mislabeled: field_u64(x, "mislabeled")?,
                base_us: opt_us("base_us")?,
                clean_us: opt_us("clean_us")?,
                poisoned_us: opt_us("poisoned_us")?,
                score: field_u64(x, "score")?,
            })
        }
    };
    let sim = field(j, "sim")?;
    Ok(PhaseMeasurements {
        diagnosis,
        overload,
        degraded,
        corpus,
        supervised,
        daemon,
        poison,
        sim: SimMeasurement {
            wall_ms: field_f64(sim, "wall_ms")?,
            events: field_u64(sim, "events")?,
            sim_us: field_u64(sim, "sim_us")?,
            events_per_sec: field_f64(sim, "events_per_sec")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_phase() -> PhaseMeasurements {
        PhaseMeasurements {
            diagnosis: vec![DiagnosisMeasurement {
                version: "D".into(),
                wall_ms: 1234.5,
                quiescent: true,
                pairs_tested: 321,
                end_time_us: 42_000_000,
                bottlenecks: 7,
                verdicts: OUTCOME_NAMES
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (n.to_string(), i as u64))
                    .collect(),
                last_bottleneck_us: Some(41_500_000),
            }],
            overload: Some(OverloadMeasurement {
                wall_ms: 2000.25,
                converged: true,
                degraded_gracefully: true,
                shed_samples: 10,
                shed_requests: 2,
                breaker_opens: 1,
                saturated_pairs: 3,
                directives: 12,
                leaked_directives: 0,
                peak_in_flight: 9,
            }),
            degraded: Some(DegradedMeasurement {
                wall_ms: 900.0,
                reduction: Some(0.8125),
                unknown_pairs: 4,
                unreachable: 2,
                directives: 11,
            }),
            corpus: Some(CorpusMeasurement {
                cold_wall_ms: 800.5,
                incremental_wall_ms: 30.25,
                records: 1006,
                findings: 4,
                cold_lowered: 1006,
                incremental_lowered: 1,
            }),
            supervised: Some(SupervisedMeasurement {
                bare_wall_ms: 500.0,
                supervised_wall_ms: 512.5,
                sessions: 1,
                completed: 1,
                identical: true,
            }),
            daemon: Some(DaemonMeasurement {
                daemon_wall_ms: 220.0,
                inprocess_wall_ms: 200.0,
                sessions: 4,
                completed: 4,
                identical: true,
            }),
            poison: Some(PoisonMeasurement {
                wall_ms: 3000.75,
                complete: true,
                injected: 266,
                audits: 119,
                revocations: 87,
                mislabeled: 0,
                base_us: Some(324_000_000),
                clean_us: Some(20_250_000),
                poisoned_us: Some(69_750_000),
                score: 0,
            }),
            sim: SimMeasurement {
                wall_ms: 100.0,
                events: 123_456,
                sim_us: 900_000_000,
                events_per_sec: 1_234_560.0,
            },
        }
    }

    #[test]
    fn schema_roundtrips_exactly() {
        let snap = Snapshot {
            schema: SCHEMA.into(),
            pr: 6,
            before: Some(sample_phase()),
            after: sample_phase(),
        };
        let text = snap.to_json();
        let back = Snapshot::parse(&text).expect("own output parses");
        assert_eq!(snap, back);
        // And the reserialization is byte-identical (stable schema).
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn missing_before_is_null() {
        let snap = Snapshot {
            schema: SCHEMA.into(),
            pr: 6,
            before: None,
            after: sample_phase(),
        };
        let text = snap.to_json();
        assert!(text.contains("\"before\": null"));
        let back = Snapshot::parse(&text).expect("own output parses");
        assert!(back.before.is_none());
    }

    #[test]
    fn snapshots_without_corpus_section_still_parse() {
        // Snapshots committed before the corpus scenario existed have no
        // "corpus" key at all; they must keep parsing (and comparing).
        let mut phase = sample_phase();
        phase.corpus = None;
        phase.supervised = None;
        phase.daemon = None;
        phase.poison = None;
        let with_null = Snapshot {
            schema: SCHEMA.into(),
            pr: 6,
            before: None,
            after: phase,
        }
        .to_json();
        assert!(with_null.contains("\"corpus\": null"));
        assert!(with_null.contains("\"supervised\": null"));
        assert!(with_null.contains("\"daemon\": null"));
        assert!(with_null.contains("\"poison\": null"));
        let without_key: String = with_null
            .lines()
            .filter(|l| {
                !l.contains("\"corpus\"")
                    && !l.contains("\"supervised\"")
                    && !l.contains("\"daemon\"")
                    && !l.contains("\"poison\"")
            })
            .collect::<Vec<_>>()
            .join("\n");
        for text in [with_null, without_key] {
            let back = Snapshot::parse(&text).expect("legacy snapshot parses");
            assert!(back.after.corpus.is_none());
            assert!(back.after.supervised.is_none());
            assert!(back.after.daemon.is_none());
            assert!(back.after.poison.is_none());
            assert!(invariant_regressions(&back.after, &sample_phase()).is_empty());
        }
    }

    #[test]
    fn poison_fields_are_deterministic_except_wall_time() {
        let a = sample_phase();
        let mut b = sample_phase();
        b.poison.as_mut().unwrap().wall_ms *= 10.0;
        assert!(invariant_regressions(&a, &b).is_empty());
        b.poison.as_mut().unwrap().complete = false;
        b.poison.as_mut().unwrap().mislabeled = 3;
        b.poison.as_mut().unwrap().poisoned_us = Some(300_000_000);
        let msgs = invariant_regressions(&a, &b);
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("complete")));
        assert!(msgs.iter().any(|m| m.contains("mislabeled")));
        assert!(msgs.iter().any(|m| m.contains("poisoned_us")));
        let p = a.poison.as_ref().unwrap();
        let retention = p.retention().unwrap();
        assert!(retention > 0.5, "fixture retention {retention}");
    }

    #[test]
    fn supervised_overhead_is_timing_only() {
        // Overhead drift must never count as a regression; the three
        // deterministic fields must.
        let a = sample_phase();
        let mut b = sample_phase();
        b.supervised.as_mut().unwrap().supervised_wall_ms *= 10.0;
        assert!(invariant_regressions(&a, &b).is_empty());
        b.supervised.as_mut().unwrap().identical = false;
        b.supervised.as_mut().unwrap().completed = 0;
        let msgs = invariant_regressions(&a, &b);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("identical")));
        assert!(msgs.iter().any(|m| m.contains("completed")));
        let s = a.supervised.as_ref().unwrap();
        assert!((s.overhead().unwrap() - 0.025).abs() < 1e-9);
    }

    #[test]
    fn daemon_overhead_is_timing_only() {
        let a = sample_phase();
        let mut b = sample_phase();
        b.daemon.as_mut().unwrap().daemon_wall_ms *= 10.0;
        b.daemon.as_mut().unwrap().inprocess_wall_ms *= 0.5;
        assert!(invariant_regressions(&a, &b).is_empty());
        b.daemon.as_mut().unwrap().identical = false;
        b.daemon.as_mut().unwrap().completed = 0;
        let msgs = invariant_regressions(&a, &b);
        assert_eq!(msgs.len(), 2, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("identical")));
        assert!(msgs.iter().any(|m| m.contains("completed")));
        let d = a.daemon.as_ref().unwrap();
        assert!((d.overhead().unwrap() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        let text = Snapshot {
            schema: SCHEMA.into(),
            pr: 6,
            before: None,
            after: sample_phase(),
        }
        .to_json()
        .replace(SCHEMA, "histpc-bench-snapshot/v0");
        assert!(Snapshot::parse(&text).is_err());
    }

    #[test]
    fn quick_profile_is_deterministic_in_non_timing_fields() {
        let a = measure_quick();
        let b = measure_quick();
        let regressions = invariant_regressions(&a, &b);
        assert!(
            regressions.is_empty(),
            "quick profile not deterministic: {regressions:?}"
        );
        // The scenario actually measured something.
        assert!(a.sim.events > 0);
        assert!(a.diagnosis[0].pairs_tested > 0);
        assert!(a.diagnosis[0].quiescent);
    }

    #[test]
    fn invariant_regressions_flag_changes() {
        let a = sample_phase();
        let mut b = sample_phase();
        b.diagnosis[0].bottlenecks = 6;
        b.overload.as_mut().unwrap().converged = false;
        b.sim.events += 1;
        // Pure timing drift is never a regression.
        b.diagnosis[0].wall_ms *= 10.0;
        let msgs = invariant_regressions(&a, &b);
        assert_eq!(msgs.len(), 3, "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("bottlenecks")));
        assert!(msgs.iter().any(|m| m.contains("converged")));
        assert!(msgs.iter().any(|m| m.contains("events")));
    }
}
