//! Microbenchmarks of the substrates: the DES engine, resource
//! refinement, directive matching, mapping application, and histograms.

use criterion::{criterion_group, criterion_main, Criterion};
use histpc::history;
use histpc::prelude::*;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("poisson_c_one_sim_second", |b| {
        b.iter(|| {
            let wl = PoissonWorkload::new(PoissonVersion::C);
            let mut e = wl.build_engine();
            e.run_until(SimTime::from_secs(1));
            black_box(e.totals().end_time())
        })
    });
    g.bench_function("poisson_d_8procs_one_sim_second", |b| {
        b.iter(|| {
            let wl = PoissonWorkload::new(PoissonVersion::D);
            let mut e = wl.build_engine();
            e.run_until(SimTime::from_secs(1));
            black_box(e.totals().end_time())
        })
    });
    g.finish();
}

fn bench_resources(c: &mut Criterion) {
    let wl = PoissonWorkload::new(PoissonVersion::C);
    let collector = Collector::new(wl.app_spec(), CollectorConfig::default());
    let space = collector.space().clone();
    let whole = space.whole_program();
    let children = space.refine(&whole);
    let mut g = c.benchmark_group("resources");
    g.bench_function("refine_whole_program", |b| {
        b.iter(|| black_box(space.refine(&whole).len()))
    });
    g.bench_function("refine_two_levels", |b| {
        b.iter(|| {
            let mut count = 0;
            for child in &children {
                count += space.refine(child).len();
            }
            black_box(count)
        })
    });
    g.bench_function("focus_parse_format", |b| {
        let text = "</Code/exchng2.f/exchng2,/Machine,/Process/poisson:3,/SyncObject/Message/3_0>";
        b.iter(|| {
            let f = Focus::parse(black_box(text)).unwrap();
            black_box(f.to_string())
        })
    });
    g.finish();
}

fn bench_directives(c: &mut Criterion) {
    // A realistic directive set: harvested from a short base run.
    let wl = SyntheticWorkload::balanced(4, 6, 0.2)
        .with_hotspot(0, 1, 2.0)
        .with_ring(256);
    let config = SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    };
    let d = Session::new().diagnose(&wl, &config, "bench").unwrap();
    let directives = history::extract(&d.record, &ExtractionOptions::priorities_and_safe_prunes());
    let space = d.postmortem.space().clone();
    let probe = space
        .whole_program()
        .with_selection(ResourceName::parse("/Code/app.c/f1").unwrap());
    let mut g = c.benchmark_group("directives");
    g.bench_function("priority_lookup", |b| {
        b.iter(|| black_box(directives.priority_of("CPUbound", &probe)))
    });
    g.bench_function("prune_matching", |b| {
        b.iter(|| black_box(directives.is_pruned("CPUbound", &probe)))
    });
    g.bench_function("parse_directive_file", |b| {
        let text = directives.to_text();
        b.iter(|| black_box(SearchDirectives::parse(&text).unwrap().len()))
    });
    let mut mappings = MappingSet::new();
    for i in 1..=4 {
        mappings.add(
            ResourceName::parse(&format!("/Machine/n{i:02}")).unwrap(),
            ResourceName::parse(&format!("/Machine/m{i:02}")).unwrap(),
        );
    }
    g.bench_function("apply_mappings", |b| {
        b.iter(|| black_box(mappings.apply_to_directives(&directives).len()))
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.bench_function("add_10k_intervals_with_folds", |b| {
        b.iter(|| {
            let mut h = histpc::instr::TimeHistogram::standard();
            for i in 0..10_000u64 {
                let t = SimTime(i * 50_000);
                h.add(t, t + SimDuration(40_000), 1.0);
            }
            black_box(h.total())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_resources,
    bench_directives,
    bench_histogram
);
criterion_main!(benches);
