//! End-to-end benchmarks: one benchmark per table/figure of the paper.
//!
//! Each benchmark regenerates (a representative slice of) the
//! corresponding experiment, so `cargo bench` exercises every artifact's
//! code path and tracks the tool's own cost. The printable tables come
//! from the `table1`..`table4`, `fig*` and `exp_combination` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use histpc::history;
use histpc::prelude::*;
use histpc_bench as bench;
use std::hint::black_box;
use std::time::Duration;

fn configured<'c>(
    c: &'c mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    g
}

/// Table 1: the base diagnosis and the combined directed diagnosis.
fn bench_table1(c: &mut Criterion) {
    let base = bench::base_diagnosis(PoissonVersion::C);
    let directives = history::extract(
        &base.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    let mut g = configured(c, "table1");
    g.bench_function("base_diagnosis_poisson_c", |b| {
        b.iter(|| black_box(bench::base_diagnosis(PoissonVersion::C).report.pairs_tested))
    });
    g.bench_function("directed_diagnosis_poisson_c", |b| {
        b.iter(|| {
            black_box(
                bench::directed_diagnosis(PoissonVersion::C, directives.clone())
                    .report
                    .pairs_tested,
            )
        })
    });
    g.finish();
}

/// Table 2: one sweep point at the paper's optimal threshold.
fn bench_table2(c: &mut Criterion) {
    let mut g = configured(c, "table2");
    g.bench_function("threshold_point_12pct", |b| {
        b.iter(|| {
            let wl = PoissonWorkload::new(PoissonVersion::C);
            let mut directives = SearchDirectives::none();
            directives.add_threshold(ThresholdDirective {
                hypothesis: "ExcessiveSyncWaitingTime".into(),
                value: 0.12,
            });
            let d = Session::new()
                .diagnose(
                    &wl,
                    &bench::exp_config().with_directives(directives),
                    "bench",
                )
                .unwrap();
            black_box(d.report.bottleneck_count())
        })
    });
    g.finish();
}

/// Table 3: one cross-version cell (A's directives guiding C).
fn bench_table3(c: &mut Criterion) {
    let a = bench::base_diagnosis(PoissonVersion::A);
    let c_probe = bench::base_diagnosis(PoissonVersion::C);
    let session = Session::new();
    let mut g = configured(c, "table3");
    g.bench_function("cross_version_a_to_c", |b| {
        b.iter(|| {
            let directives = session
                .harvest_mapped(
                    &a.record,
                    &c_probe.record.resources,
                    &ExtractionOptions::priorities_and_safe_prunes(),
                    &MappingSet::new(),
                )
                .unwrap();
            black_box(
                bench::directed_diagnosis(PoissonVersion::C, directives)
                    .report
                    .bottleneck_count(),
            )
        })
    });
    g.finish();
}

/// Table 4: extraction and classification of priority sets.
fn bench_table4(c: &mut Criterion) {
    let a = bench::base_diagnosis(PoissonVersion::A);
    let c_probe = bench::base_diagnosis(PoissonVersion::C);
    let session = Session::new();
    let mut g = configured(c, "table4");
    g.bench_function("extract_and_map_priorities", |b| {
        b.iter(|| {
            let d = session
                .harvest_mapped(
                    &a.record,
                    &c_probe.record.resources,
                    &ExtractionOptions::priorities_only(),
                    &MappingSet::new(),
                )
                .unwrap();
            black_box(d.priorities.len())
        })
    });
    g.finish();
}

/// Figures: hierarchy rendering, SHG snapshot, execution map.
fn bench_figures(c: &mut Criterion) {
    let mut g = configured(c, "figures");
    g.bench_function("fig1_hierarchies", |b| {
        b.iter(|| black_box(bench::fig1_hierarchies().len()))
    });
    g.bench_function("fig2_shg_snapshot", |b| {
        b.iter(|| black_box(bench::fig2_shg_snapshot(SimTime::from_secs(6)).len()))
    });
    g.bench_function("fig3_mappings", |b| {
        b.iter(|| black_box(bench::fig3_mappings().len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_figures
);
criterion_main!(benches);
