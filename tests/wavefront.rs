//! Integration: diagnosing the wavefront (Sweep3D-style) kernel — a
//! bottleneck family the Poisson code does not exercise: pipeline waits
//! plus a per-iteration data-carrying collective.

use histpc::history;
use histpc::prelude::*;

fn config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_secs(1),
        sample: SimDuration::from_millis(200),
        max_time: SimDuration::from_secs(300),
        ..SearchConfig::default()
    }
}

#[test]
fn wavefront_diagnosis_finds_pipeline_and_collective_waits() {
    let wl = WavefrontWorkload::new();
    let session = Session::new();
    let d = session.diagnose(&wl, &config(), "w1").unwrap();
    assert!(d.report.quiescent, "search should complete");
    let b = d.report.bottleneck_set();

    // The dominant problem is synchronization waiting...
    assert!(b
        .iter()
        .any(|(h, f)| h == "ExcessiveSyncWaitingTime" && f.is_whole_program()));
    // ...specifically *message* waiting in the sweep function...
    assert!(
        b.iter().any(|(h, f)| {
            h == "ExcessiveMessageWaitingTime"
                && f.selection("Code")
                    .is_some_and(|s| s.to_string() == "/Code/sweep.f/sweep")
        }),
        "sweep pipeline waits not identified: {b:?}"
    );
    // ...and the sub-hypothesis axis separates the collective's barrier
    // waits (attributed to main) from the pipeline's message waits.
    assert!(
        b.iter().any(|(h, f)| {
            h == "ExcessiveBarrierWaitingTime"
                && f.selection("Code")
                    .is_some_and(|s| s.to_string().starts_with("/Code/driver.f"))
        }),
        "collective barrier waits not identified: {b:?}"
    );
}

#[test]
fn wavefront_history_speeds_up_rediagnosis() {
    let wl = WavefrontWorkload::new();
    let session = Session::new();
    let base = session.diagnose(&wl, &config(), "base").unwrap();
    let truth: Vec<(String, Focus)> = base
        .report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect();
    let directives = history::extract(
        &base.record,
        &ExtractionOptions::priorities_and_safe_prunes(),
    );
    let directed = session
        .diagnose(&wl, &config().with_directives(directives), "directed")
        .unwrap();
    let t_base = base.report.time_to_find(&truth, 1.0).unwrap();
    let t_directed = directed
        .report
        .time_to_find(&truth, 1.0)
        .expect("directed run covers the truth set");
    assert!(
        t_directed.as_secs_f64() < 0.5 * t_base.as_secs_f64(),
        "expected >50% reduction: {t_base} -> {t_directed}"
    );
}

#[test]
fn profile_rendering_summarizes_the_run() {
    let wl = WavefrontWorkload::new();
    let mut engine = wl.build_engine();
    engine.run_until(SimTime::from_secs(5));
    let pm = PostmortemData::from_totals(engine.app().clone(), engine.totals());
    let text = pm.render_profile();
    assert!(text.contains("whole program:"));
    assert!(text.contains("/Code/sweep.f/sweep"));
    assert!(text.contains("/SyncObject/Message/fwd"));
    assert!(text.contains("/Process/sweep3d:1"));
    assert!(!text.contains("-0.0%"));
}
