//! Integration: directives harvested from one code version guiding the
//! diagnosis of another, through automatic resource mapping (paper §4.3).

use histpc::prelude::*;

fn config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_secs(1),
        sample: SimDuration::from_millis(200),
        max_time: SimDuration::from_secs(300),
        ..SearchConfig::default()
    }
}

#[test]
fn version_a_directives_speed_up_version_b() {
    let session = Session::new();
    let a = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::A), &config(), "a")
        .unwrap();
    let b_base = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::B), &config(), "b0")
        .unwrap();

    let directives = session
        .harvest_mapped(
            &a.record,
            &b_base.record.resources,
            &ExtractionOptions::priorities_and_safe_prunes(),
            &MappingSet::new(),
        )
        .unwrap();
    // Mapped directives must speak B's vocabulary, not A's.
    for p in &directives.priorities {
        let code = p
            .focus
            .selection("Code")
            .map(|s| s.to_string())
            .unwrap_or_default();
        assert!(
            !code.contains("oned.f") && !code.contains("exchng1.f") && !code.contains("/sweep.f"),
            "unmapped version-A name in {code}"
        );
    }

    let b = session
        .diagnose(
            &PoissonWorkload::new(PoissonVersion::B),
            &config().with_directives(directives),
            "b1",
        )
        .unwrap();
    let truth: Vec<(String, Focus)> = b_base
        .report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect();
    let t_base = b_base.report.time_to_find(&truth, 1.0).unwrap();
    let t_directed = b
        .report
        .time_to_find(&truth, 1.0)
        .expect("cross-version directives must not lose bottlenecks");
    assert!(
        t_directed.as_secs_f64() < 0.75 * t_base.as_secs_f64(),
        "expected >25% reduction: base {t_base}, directed {t_directed}"
    );
}

#[test]
fn version_c_directives_map_onto_8_node_version_d() {
    // D runs the same code as C but on 8 differently-numbered nodes:
    // machine mapping is positional, and the 4 extra processes are
    // discovered by the normal search.
    let session = Session::new();
    let c = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::C), &config(), "c")
        .unwrap();
    let d_base = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::D), &config(), "d0")
        .unwrap();
    let directives = session
        .harvest_mapped(
            &c.record,
            &d_base.record.resources,
            &ExtractionOptions::priorities_only(),
            &MappingSet::new(),
        )
        .unwrap();
    // Machine names must have been rewritten: C uses node01..node04,
    // D uses node09..node16.
    for p in &directives.priorities {
        if let Some(m) = p.focus.selection("Machine") {
            if !m.is_root() {
                let label = m.label();
                let num: usize = label.trim_start_matches("node").parse().unwrap();
                assert!((9..=16).contains(&num), "unmapped machine {label}");
            }
        }
    }
    let d = session
        .diagnose(
            &PoissonWorkload::new(PoissonVersion::D),
            &config().with_directives(directives),
            "d1",
        )
        .unwrap();
    assert!(d.report.bottleneck_count() > 0);
    // The directed run finds bottlenecks on processes 5..8 as well,
    // even though no directive mentions them.
    let found_high_rank = d.report.bottleneck_set().iter().any(|(_, f)| {
        f.selection("Process")
            .is_some_and(|p| p.label().ends_with(":7") || p.label().ends_with(":8"))
    });
    assert!(found_high_rank, "no bottlenecks found on the new processes");
}

#[test]
fn suggested_mappings_cover_the_paper_renames() {
    let a = histpc::instr::Binder::new(PoissonWorkload::new(PoissonVersion::A).app_spec())
        .build_space();
    let b = histpc::instr::Binder::new(PoissonWorkload::new(PoissonVersion::B).app_spec())
        .build_space();
    let an: Vec<ResourceName> = a.hierarchies().iter().flat_map(|h| h.all_names()).collect();
    let bn: Vec<ResourceName> = b.hierarchies().iter().flat_map(|h| h.all_names()).collect();
    let m = MappingSet::suggest(&an, &bn);
    let text = m.to_text();
    for expected in [
        "map /Code/oned.f /Code/onednb.f",
        "map /Code/exchng1.f /Code/nbexchng.f",
        "map /Code/exchng1.f/exchng1 /Code/nbexchng.f/nbexchng1",
        "map /Code/sweep.f /Code/nbsweep.f",
        "map /Code/sweep.f/sweep1d /Code/nbsweep.f/nbsweep",
    ] {
        assert!(text.contains(expected), "missing {expected} in:\n{text}");
    }
}
