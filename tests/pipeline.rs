//! End-to-end integration: diagnose → persist → harvest → directed
//! re-diagnosis, through the on-disk execution store.

use histpc::history;
use histpc::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(120),
        ..SearchConfig::default()
    }
}

fn store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("histpc-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_pipeline_through_disk_store() {
    let dir = store_dir("pipeline");
    let session = Session::with_store(&dir).unwrap();
    let wl = SyntheticWorkload::balanced(4, 4, 0.2)
        .with_hotspot(0, 1, 2.0)
        .with_ring(256);

    // Base run, persisted.
    let base = session.diagnose(&wl, &fast_config(), "run1").unwrap();
    assert!(base.report.bottleneck_count() > 0);

    // Reload from disk and verify the record round-trips.
    let loaded = session.store().unwrap().load("synth", "run1").unwrap();
    assert_eq!(loaded.outcomes.len(), base.record.outcomes.len());
    assert_eq!(loaded.resources, base.record.resources);
    assert_eq!(loaded.pairs_tested, base.record.pairs_tested);

    // Harvest from the stored record and re-diagnose.
    let directives = session
        .harvest(
            "synth",
            "run1",
            &ExtractionOptions::priorities_and_safe_prunes(),
        )
        .unwrap();
    assert!(!directives.is_empty());
    let directed = session
        .diagnose(&wl, &fast_config().with_directives(directives), "run2")
        .unwrap();

    // The directed run reports every (machine-deduplicated) bottleneck of
    // the base run, faster.
    let truth: Vec<(String, Focus)> = base
        .report
        .bottleneck_set()
        .into_iter()
        .filter(|(_, f)| f.selection("Machine").is_none_or(|m| m.is_root()))
        .collect();
    let t_base = base.report.time_to_find(&truth, 1.0).unwrap();
    let t_directed = directed
        .report
        .time_to_find(&truth, 1.0)
        .expect("directed run must not miss base bottlenecks");
    assert!(
        t_directed < t_base,
        "directed {t_directed} not faster than base {t_base}"
    );

    // Both runs are now stored.
    assert_eq!(
        session.store().unwrap().labels("synth").unwrap(),
        vec!["run1", "run2"]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn directive_files_roundtrip_through_text() {
    let wl = SyntheticWorkload::balanced(2, 3, 0.2).with_hotspot(1, 2, 1.5);
    let session = Session::new();
    let d = session.diagnose(&wl, &fast_config(), "r").unwrap();
    let directives = history::extract(&d.record, &ExtractionOptions::priorities_and_safe_prunes());
    let text = directives.to_text();
    let parsed = SearchDirectives::parse(&text).unwrap();
    assert_eq!(parsed.prunes, directives.prunes);
    assert_eq!(parsed.priorities, directives.priorities);
    // A directed run from the re-parsed file behaves identically.
    let a = session
        .diagnose(&wl, &fast_config().with_directives(directives), "a")
        .unwrap();
    let b = session
        .diagnose(&wl, &fast_config().with_directives(parsed), "b")
        .unwrap();
    assert_eq!(a.report.pairs_tested, b.report.pairs_tested);
    assert_eq!(a.report.bottleneck_set(), b.report.bottleneck_set());
}

#[test]
fn postmortem_extraction_matches_online_shape() {
    // The paper's §6 extension: extract directives from raw data without
    // an SHG. The postmortem record's true set must cover the online
    // search's whole-program conclusions.
    let wl = SyntheticWorkload::balanced(2, 3, 0.2).with_hotspot(0, 1, 2.0);
    let session = Session::new();
    let d = session.diagnose(&wl, &fast_config(), "r").unwrap();
    let rec = history::postmortem_record(
        &d.postmortem,
        &histpc::consultant::HypothesisTree::standard(),
        &SearchDirectives::none(),
        "postmortem",
    );
    for o in d
        .report
        .outcomes
        .iter()
        .filter(|o| o.outcome == Outcome::True && o.focus.is_whole_program())
    {
        assert!(
            rec.outcomes.iter().any(|p| {
                p.hypothesis == o.hypothesis && p.focus == o.focus && p.outcome == Outcome::True
            }),
            "postmortem missed online bottleneck {} {}",
            o.hypothesis,
            o.focus
        );
    }
    // And directives extracted from it are usable.
    let directives = history::extract(&rec, &ExtractionOptions::priorities_only());
    assert!(!directives.is_empty());
    let redo = session
        .diagnose(&wl, &fast_config().with_directives(directives), "redo")
        .unwrap();
    assert!(redo.report.bottleneck_count() > 0);
}

#[test]
fn determinism_same_config_same_report() {
    let wl = SyntheticWorkload::balanced(3, 3, 0.3)
        .with_hotspot(2, 0, 1.0)
        .with_ring(128);
    let session = Session::new();
    let a = session.diagnose(&wl, &fast_config(), "a").unwrap();
    let b = session.diagnose(&wl, &fast_config(), "b").unwrap();
    assert_eq!(a.report.pairs_tested, b.report.pairs_tested);
    assert_eq!(a.report.end_time, b.report.end_time);
    assert_eq!(a.report.outcomes.len(), b.report.outcomes.len());
    for (x, y) in a.report.outcomes.iter().zip(&b.report.outcomes) {
        assert_eq!(x.hypothesis, y.hypothesis);
        assert_eq!(x.focus, y.focus);
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.first_true_at, y.first_true_at);
    }
}
