//! Integration: failure injection and degenerate inputs.

use histpc::history;
use histpc::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(60),
        ..SearchConfig::default()
    }
}

#[test]
fn stale_directives_for_unknown_resources_are_harmless() {
    // Directives naming resources that do not exist in the current run
    // (a renamed function nobody mapped) must not break the search: the
    // stale pairs simply collect no data and conclude false.
    let wl = SyntheticWorkload::balanced(2, 2, 0.2).with_hotspot(0, 1, 2.0);
    let mut directives = SearchDirectives::none();
    directives.add_priority(PriorityDirective {
        hypothesis: "CPUbound".into(),
        focus: Focus::whole_program(["Code", "Machine", "Process", "SyncObject"])
            .with_selection(ResourceName::parse("/Code/ghost.c/phantom").unwrap()),
        level: PriorityLevel::High,
    });
    directives.add_prune(Prune {
        hypothesis: None,
        target: PruneTarget::Resource(ResourceName::parse("/Code/gone.c").unwrap()),
    });
    let d = Session::new()
        .diagnose(&wl, &fast_config().with_directives(directives), "stale")
        .unwrap();
    assert!(d.report.bottleneck_count() > 0, "search still works");
    let stale = d
        .report
        .outcomes
        .iter()
        .find(|o| {
            o.focus
                .selection("Code")
                .is_some_and(|s| s.to_string() == "/Code/ghost.c/phantom")
        })
        .expect("stale pair recorded");
    assert_eq!(stale.outcome, Outcome::False);
}

#[test]
fn unknown_hypothesis_directives_are_refused_by_preflight() {
    // A directive naming a hypothesis the tree does not know is almost
    // certainly a typo; the pre-flight lint refuses it (HL002) instead
    // of silently steering nothing.
    let wl = SyntheticWorkload::balanced(2, 2, 0.2).with_hotspot(0, 1, 2.0);
    let mut directives = SearchDirectives::none();
    directives.add_priority(PriorityDirective {
        hypothesis: "NotAHypothesis".into(),
        focus: Focus::whole_program(["Code", "Machine", "Process", "SyncObject"]),
        level: PriorityLevel::High,
    });
    let err = Session::new()
        .diagnose(&wl, &fast_config().with_directives(directives), "x")
        .unwrap_err();
    match err {
        SessionError::Lint(report) => {
            assert!(report.has_errors());
            assert_eq!(report.with_code("HL002").len(), 1);
        }
        other => panic!("expected a lint refusal, got {other}"),
    }
}

#[test]
fn pruning_everything_yields_empty_but_clean_diagnosis() {
    let wl = SyntheticWorkload::balanced(2, 2, 0.2).with_hotspot(0, 1, 2.0);
    let mut directives = SearchDirectives::none();
    // Prune every hypothesis at every focus via pair prunes on the whole
    // program (the roots of the search).
    for hyp in [
        "CPUbound",
        "ExcessiveSyncWaitingTime",
        "ExcessiveIOBlockingTime",
    ] {
        directives.add_prune(Prune {
            hypothesis: Some(hyp.into()),
            target: PruneTarget::Pair(Focus::whole_program([
                "Code",
                "Machine",
                "Process",
                "SyncObject",
            ])),
        });
    }
    let d = Session::new()
        .diagnose(&wl, &fast_config().with_directives(directives), "none")
        .unwrap();
    assert_eq!(d.report.bottleneck_count(), 0);
    assert!(d.report.quiescent);
    assert_eq!(d.report.pairs_tested, 0);
    assert_eq!(
        d.report
            .outcomes
            .iter()
            .filter(|o| o.outcome == Outcome::Pruned)
            .count(),
        3
    );
}

#[test]
fn empty_store_queries_fail_cleanly() {
    let dir = std::env::temp_dir().join(format!("histpc-empty-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let session = Session::with_store(&dir).unwrap();
    assert!(session
        .harvest("nothing", "r1", &ExtractionOptions::default())
        .is_err());
    assert!(session
        .store()
        .unwrap()
        .labels("nothing")
        .unwrap()
        .is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_record_files_report_errors() {
    let dir = std::env::temp_dir().join(format!("histpc-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("app")).unwrap();
    std::fs::write(dir.join("app").join("bad.record"), "not a record\n").unwrap();
    let store = ExecutionStore::open(&dir).unwrap();
    assert!(store.load("app", "bad").is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mapping_files_reject_garbage_but_accept_comments() {
    assert!(MappingSet::parse("map /Code/a /Process/b").is_err());
    assert!(MappingSet::parse("nonsense\n").is_err());
    let ok = MappingSet::parse("# fine\n\nmap /Code/a.c /Code/b.c\n").unwrap();
    assert_eq!(ok.len(), 1);
}

#[test]
fn extraction_from_empty_record_produces_only_general_rules() {
    // A record with no outcomes (e.g. a run that found nothing) still
    // yields the general prunes, and nothing else.
    let wl = SyntheticWorkload::balanced(2, 1, 0.1);
    let session = Session::new();
    let d = session.diagnose(&wl, &fast_config(), "r").unwrap();
    let mut rec = d.record.clone();
    rec.outcomes.clear();
    let directives = history::extract(&rec, &ExtractionOptions::priorities_and_safe_prunes());
    assert!(directives.priorities.is_empty());
    assert!(!directives.prunes.is_empty());
    assert!(directives.thresholds.is_empty());
}

#[test]
fn combination_of_disjoint_histories() {
    // A∩B of unrelated applications is empty; A∪B contains both.
    let wl1 = SyntheticWorkload::balanced(2, 2, 0.2).with_hotspot(0, 0, 1.0);
    let session = Session::new();
    let d1 = session.diagnose(&wl1, &fast_config(), "r1").unwrap();
    let a = history::extract(&d1.record, &ExtractionOptions::priorities_only());
    let empty = SearchDirectives::none();
    assert_eq!(histpc::history::intersect(&a, &empty).priorities.len(), 0);
    assert_eq!(
        histpc::history::union(&a, &empty).priorities.len(),
        a.priorities.len()
    );
}
