//! Integration: artifacts the pipeline itself produces must lint clean.
//!
//! `histpc harvest` extracts directives from a recorded run and
//! `MappingSet::suggest` proposes mappings between runs; both are fed
//! back into later diagnoses through the same pre-flight lint that
//! user-written files go through. If our own output tripped the linter,
//! the tuning cycle would refuse its own advice.

use histpc::history;
use histpc::lint::Linter;
use histpc::prelude::*;

fn fast_config() -> SearchConfig {
    SearchConfig {
        window: SimDuration::from_millis(800),
        sample: SimDuration::from_millis(100),
        max_time: SimDuration::from_secs(120),
        ..SearchConfig::default()
    }
}

#[test]
fn harvested_directives_lint_clean_against_their_source_run() {
    let wl = PoissonWorkload::new(PoissonVersion::C);
    let d = Session::new()
        .diagnose(&wl, &fast_config(), "base")
        .unwrap();
    for (name, opts) in [
        ("priorities", ExtractionOptions::priorities_only()),
        ("all-prunes", ExtractionOptions::all_prunes()),
        ("combined", ExtractionOptions::priorities_and_safe_prunes()),
        (
            "combined+thresholds",
            ExtractionOptions::priorities_and_safe_prunes().with_thresholds(),
        ),
    ] {
        let directives = history::extract(&d.record, &opts);
        let linter = Linter::new()
            .directives(directives.to_text(), format!("harvest-{name}"))
            .against(&d.record);
        let report = linter.run();
        assert!(
            report.is_clean(),
            "harvest mode {name} should lint clean, got:\n{}",
            report.render(&linter.sources())
        );
    }
}

#[test]
fn suggested_mappings_and_mapped_directives_lint_clean() {
    let session = Session::new();
    let config = fast_config();
    let a = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::A), &config, "a")
        .unwrap();
    let b = session
        .diagnose(&PoissonWorkload::new(PoissonVersion::B), &config, "b")
        .unwrap();

    let mappings = MappingSet::suggest(&a.record.resources, &b.record.resources);
    let directives = history::extract(&a.record, &ExtractionOptions::priorities_and_safe_prunes());
    let mapped = mappings.apply_to_directives(&directives);

    // The mapping file itself plus the rewritten directives, checked
    // against the *target* run: nothing may dangle after mapping.
    let linter = Linter::new()
        .directives(mapped.to_text(), "mapped.dirs")
        .mappings(mappings.to_text(), "suggested.map")
        .against(&b.record);
    let report = linter.run();
    assert!(
        !report.has_errors(),
        "suggested mappings must not produce lint errors, got:\n{}",
        report.render(&linter.sources())
    );
}
