//! Workspace-level integration surface. Re-exports the `histpc` facade so
//! root-level examples and integration tests can use one import path.
pub use histpc::*;
